// Shared nested-config building blocks for every server/service config.
//
// ServerConfig, ConcurrentServerConfig, IngestServiceConfig and
// ShardedIngestConfig all grew the same nested `Stages`/`Observability`
// structs plus a validate() entry point; the serving-tier configs repeated
// `Observability` a third time. This header defines each block once —
// existing field names stay source-compatible via member aliases
// (`using Stages = StagesConfig;` etc. at the embedding site).
//
// DurabilityConfig is the knob set for the write-ahead trip log +
// checkpoint/restore subsystem (core/trip_log.h, core/checkpoint.h,
// DESIGN.md §14). It is off by default: the historical in-memory-only
// lifecycle is untouched, and open()/checkpoint()/close() become no-ops.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace bussense {

/// Ablation switches (DESIGN.md A1/A5), grouped: when a stage is disabled,
/// the pipeline falls back to per-sample best matches / singleton clusters.
struct StagesConfig {
  bool trip_mapping = true;  ///< per-trip ML mapping (A1)
  bool clustering = true;    ///< per-bus-stop co-clustering (A5)
};

/// Pipeline observability. Recording never changes results; turning it off
/// removes even the per-stage clock reads for overhead ablations.
struct ObservabilityConfig {
  bool enabled = true;
};

/// When appended write-ahead log bytes reach the disk platter.
enum class FsyncPolicy : std::uint8_t {
  kNever,        ///< OS page cache only; fsync at checkpoint/close barriers
  kInterval,     ///< fsync every `fsync_interval_records` appends
  kEveryRecord,  ///< fsync after every append (strongest, slowest)
};

inline const char* to_string(FsyncPolicy p) {
  switch (p) {
    case FsyncPolicy::kNever: return "never";
    case FsyncPolicy::kInterval: return "interval";
    case FsyncPolicy::kEveryRecord: return "every_record";
  }
  return "?";
}

/// Durable-ingest knobs: where the write-ahead trip log and checkpoint
/// files live and how eagerly appends are synced. Embedded in ServerConfig;
/// every TrafficIngestor front end honours it through the
/// open()/checkpoint()/close() lifecycle (core/traffic_ingestor.h).
struct DurabilityConfig {
  /// Off by default: no files are touched and the lifecycle calls are
  /// no-ops — existing deployments are untouched.
  bool enabled = false;

  /// Directory for WAL segments (`trips-<segment>.wal`) and checkpoints
  /// (`checkpoint-<id>.ckpt`). Created on open() if missing.
  std::string directory;

  FsyncPolicy fsync = FsyncPolicy::kNever;

  /// Appends between fsyncs under FsyncPolicy::kInterval.
  std::uint64_t fsync_interval_records = 256;

  /// Checkpoint files retained after a successful save (older ones are
  /// pruned; at least 1).
  std::size_t checkpoints_kept = 2;

  /// Throws std::invalid_argument on nonsense (enabled without a
  /// directory, a zero fsync interval, zero checkpoints kept).
  void validate() const {
    if (!enabled) return;
    if (directory.empty()) {
      throw std::invalid_argument(
          "DurabilityConfig: enabled requires a non-empty directory");
    }
    if (fsync == FsyncPolicy::kInterval && fsync_interval_records == 0) {
      throw std::invalid_argument(
          "DurabilityConfig: fsync_interval_records must be > 0 under "
          "kInterval");
    }
    if (checkpoints_kept == 0) {
      throw std::invalid_argument(
          "DurabilityConfig: checkpoints_kept must be > 0");
    }
  }
};

}  // namespace bussense
