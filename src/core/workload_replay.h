// Deterministic workload replay against any TrafficIngestor front end.
//
// A generated workload (e.g. a LOD city-week from trafficsim) is a list of
// uploads with arrival times. replay_workload() drives them through a
// front end in arrival order, advancing fusion time on a fixed cadence and
// optionally publishing serving epochs — the one replay loop the benches,
// the metropolis golden test and the examples all share, so every caller
// exercises the identical advance/process/publish interleaving.
//
// The driver is single-threaded and deterministic: the same TimedUpload
// sequence against the same front-end configuration produces the same
// accepted multiset, the same fused map and the same counters, whichever
// front end (serial server, concurrent server, async service, sharded
// service) sits behind the interface.
#pragma once

#include <cstdint>
#include <vector>

#include "common/sim_time.h"
#include "core/traffic_ingestor.h"
#include "sensing/trip.h"

namespace bussense {

/// One workload element: an upload and when it reaches the ingest tier.
struct TimedUpload {
  TripUpload upload;
  SimTime arrival = 0.0;
};

struct ReplayOptions {
  /// Fusion-time cadence: advance_time() fires whenever an arrival crosses
  /// a multiple of this period (0 disables mid-replay advancing).
  double advance_every_s = 300.0;
  /// advance_time(last arrival + final_lag_s) after the last upload, so
  /// the final fusion period closes.
  bool final_advance = true;
  double final_lag_s = 30.0;
  /// Publish a serving epoch after every Nth advance (0 = never); requires
  /// `publisher`.
  std::size_t publish_every = 0;
  EpochPublisher* publisher = nullptr;
};

struct ReplayStats {
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;   ///< kProcessed or kQueued
  std::uint64_t rejected = 0;
  std::uint64_t advances = 0;
  std::uint64_t epochs_published = 0;
  SimTime first_arrival = 0.0;
  SimTime last_arrival = 0.0;
};

/// Replays `workload` (must be sorted by arrival; throws otherwise)
/// through `ingestor`.
ReplayStats replay_workload(TrafficIngestor& ingestor,
                            const std::vector<TimedUpload>& workload,
                            const ReplayOptions& options = {});

}  // namespace bussense
