#include "core/server.h"

#include <algorithm>

namespace bussense {

TrafficServer::TrafficServer(const City& city, StopDatabase database,
                             ServerConfig config)
    : city_(&city),
      database_(std::move(database)),
      config_(config),
      route_graph_(city),
      catalog_(city),
      matcher_(database_, config_.matcher),
      mapper_(route_graph_),
      estimator_(catalog_, config_.att),
      fusion_(config_.fusion) {}

std::vector<MatchedSample> TrafficServer::match_samples(
    const TripUpload& trip, std::size_t* rejected) const {
  std::vector<MatchedSample> matched;
  std::size_t dropped = 0;
  for (const CellularSample& sample : trip.samples) {
    if (sample.fingerprint.empty()) {  // malformed or censored sample
      ++dropped;
      continue;
    }
    if (const auto result = matcher_.match(sample.fingerprint)) {
      matched.push_back(MatchedSample{sample, result->stop, result->score});
    } else {
      ++dropped;
    }
  }
  // Uploads come from unsynchronised phones over lossy links: never trust
  // their sample ordering (the clustering stage requires time order).
  std::stable_sort(matched.begin(), matched.end(),
                   [](const MatchedSample& a, const MatchedSample& b) {
                     return a.sample.time < b.sample.time;
                   });
  if (rejected) *rejected = dropped;
  return matched;
}

std::vector<SampleCluster> TrafficServer::cluster(
    const std::vector<MatchedSample>& matched) const {
  if (config_.enable_clustering) {
    return cluster_samples(matched, config_.clustering);
  }
  // Ablation: each sample becomes its own singleton cluster.
  std::vector<SampleCluster> singletons;
  singletons.reserve(matched.size());
  for (const MatchedSample& m : matched) {
    SampleCluster c;
    c.members.push_back(m);
    c.candidates.push_back(StopCandidate{m.stop, 1.0, m.score});
    singletons.push_back(std::move(c));
  }
  return singletons;
}

MappedTrip TrafficServer::map(const std::vector<SampleCluster>& clusters) const {
  if (config_.enable_trip_mapping) return mapper_.map_trip(clusters);
  // Ablation: take each cluster's best candidate with no sequence reasoning.
  MappedTrip trip;
  for (const SampleCluster& c : clusters) {
    trip.stops.push_back(MappedCluster{c, c.best_candidate().stop});
  }
  return trip;
}

TrafficServer::TripReport TrafficServer::analyze_trip(
    const TripUpload& trip) const {
  TripReport report;
  report.matched = match_samples(trip, &report.rejected_samples);
  const auto clusters = cluster(report.matched);
  report.mapped = map(clusters);
  report.estimates = estimator_.estimate(report.mapped);
  return report;
}

void TrafficServer::ingest(const std::vector<SpeedEstimate>& estimates) {
  for (const SpeedEstimate& e : estimates) fusion_.add(e);
}

TrafficServer::TripReport TrafficServer::process_trip(const TripUpload& trip) {
  TripReport report = analyze_trip(trip);
  ingest(report.estimates);
  ++trips_processed_;
  return report;
}

TrafficMap TrafficServer::snapshot(SimTime now, double max_age_s) const {
  return TrafficMap::snapshot(fusion_, catalog_, now, max_age_s);
}

}  // namespace bussense
