#include "core/server.h"

#include <algorithm>
#include <stdexcept>

#include "core/epoch_publisher.h"

namespace bussense {

void ServerConfig::validate() const {
  matcher.validate();
  if (!(clustering.max_score > 0.0)) {
    throw std::invalid_argument("ServerConfig: clustering.max_score must be > 0");
  }
  if (!(clustering.max_gap_s > 0.0)) {
    throw std::invalid_argument("ServerConfig: clustering.max_gap_s must be > 0");
  }
  if (!(fusion.update_period_s > 0.0)) {
    throw std::invalid_argument(
        "ServerConfig: fusion.update_period_s must be > 0");
  }
  if (!(fusion.observation_variance > 0.0)) {
    throw std::invalid_argument(
        "ServerConfig: fusion.observation_variance must be > 0");
  }
  if (!(fusion.variance_floor >= 0.0)) {
    throw std::invalid_argument(
        "ServerConfig: fusion.variance_floor must be >= 0");
  }
  if (!(fusion.process_noise_per_s >= 0.0)) {
    throw std::invalid_argument(
        "ServerConfig: fusion.process_noise_per_s must be >= 0");
  }
  admission.validate();
  durability.validate();
}

TrafficServer::TrafficServer(const City& city, StopDatabase database,
                             ServerConfig config)
    : city_(&city),
      database_(std::move(database)),
      config_(config),
      route_graph_(city),
      catalog_(city),
      matcher_(database_, config_.matcher),
      mapper_(route_graph_),
      estimator_(catalog_, config_.att),
      fusion_(config_.fusion),
      metrics_(std::make_unique<MetricsRegistry>()) {
  config_.validate();
  if (config_.admission.enabled) {
    admission_ = std::make_unique<AdmissionController>(config_.admission);
  }
  if (config_.durability.enabled) {
    durability_ = std::make_unique<DurabilityManager>(config_.durability, 1);
  }
  if (config_.obs.enabled) {
    inst_.trips = &metrics_->counter("pipeline.trips");
    inst_.samples_considered = &metrics_->counter("pipeline.samples_considered");
    inst_.samples_rejected = &metrics_->counter("pipeline.samples_rejected");
    inst_.samples_matched = &metrics_->counter("pipeline.samples_matched");
    inst_.clusters = &metrics_->counter("pipeline.clusters");
    inst_.estimates = &metrics_->counter("pipeline.estimates");
    inst_.match_s = &metrics_->histogram("pipeline.match_s");
    inst_.cluster_s = &metrics_->histogram("pipeline.cluster_s");
    inst_.map_s = &metrics_->histogram("pipeline.map_s");
    inst_.estimate_s = &metrics_->histogram("pipeline.estimate_s");
    inst_.fold_s = &metrics_->histogram("fusion.fold_s");
    inst_.trip_s = &metrics_->histogram("pipeline.trip_s");
    matcher_.bind_metrics(metrics_.get());
    if (admission_) admission_->bind_metrics(metrics_.get());
    if (durability_) durability_->bind_metrics(metrics_.get());
  }
}

std::vector<MatchedSample> TrafficServer::match_samples(
    const TripUpload& trip, std::size_t* rejected) const {
  const double start = inst_.match_s ? monotonic_time_s() : 0.0;
  std::vector<MatchedSample> matched;
  std::size_t dropped = 0;
  for (const CellularSample& sample : trip.samples) {
    if (sample.fingerprint.empty()) {  // malformed or censored sample
      ++dropped;
      continue;
    }
    if (const auto result = matcher_.match(sample.fingerprint)) {
      matched.push_back(MatchedSample{sample, result->stop, result->score});
    } else {
      ++dropped;
    }
  }
  // Uploads come from unsynchronised phones over lossy links: never trust
  // their sample ordering (the clustering stage requires time order).
  std::stable_sort(matched.begin(), matched.end(),
                   [](const MatchedSample& a, const MatchedSample& b) {
                     return a.sample.time < b.sample.time;
                   });
  if (rejected) *rejected = dropped;
  if (inst_.match_s) {
    inst_.match_s->record(monotonic_time_s() - start);
    inst_.samples_considered->add(trip.samples.size());
    inst_.samples_rejected->add(dropped);
    inst_.samples_matched->add(matched.size());
  }
  return matched;
}

std::vector<SampleCluster> TrafficServer::cluster_samples(
    const std::vector<MatchedSample>& matched) const {
  const double start = inst_.cluster_s ? monotonic_time_s() : 0.0;
  std::vector<SampleCluster> clusters;
  if (config_.stages.clustering) {
    clusters = bussense::cluster_samples(matched, config_.clustering);
  } else {
    // Ablation: each sample becomes its own singleton cluster.
    clusters.reserve(matched.size());
    for (const MatchedSample& m : matched) {
      SampleCluster c;
      c.members.push_back(m);
      c.candidates.push_back(StopCandidate{m.stop, 1.0, m.score});
      clusters.push_back(std::move(c));
    }
  }
  if (inst_.cluster_s) {
    inst_.cluster_s->record(monotonic_time_s() - start);
    inst_.clusters->add(clusters.size());
  }
  return clusters;
}

MappedTrip TrafficServer::map_trip(
    const std::vector<SampleCluster>& clusters) const {
  const double start = inst_.map_s ? monotonic_time_s() : 0.0;
  MappedTrip trip;
  if (config_.stages.trip_mapping) {
    trip = mapper_.map_trip(clusters);
  } else {
    // Ablation: take each cluster's best candidate with no sequence
    // reasoning.
    for (const SampleCluster& c : clusters) {
      trip.stops.push_back(MappedCluster{c, c.best_candidate().stop});
    }
  }
  if (inst_.map_s) inst_.map_s->record(monotonic_time_s() - start);
  return trip;
}

TrafficServer::TripReport TrafficServer::analyze_trip(
    const TripUpload& trip) const {
  TripReport report;
  report.matched = match_samples(trip, &report.rejected_samples);
  const auto clusters = cluster_samples(report.matched);
  report.mapped = map_trip(clusters);
  const double start = inst_.estimate_s ? monotonic_time_s() : 0.0;
  report.estimates = estimator_.estimate(report.mapped);
  if (inst_.estimate_s) {
    inst_.estimate_s->record(monotonic_time_s() - start);
    inst_.estimates->add(report.estimates.size());
  }
  return report;
}

void TrafficServer::ingest(const std::vector<SpeedEstimate>& estimates) {
  const double start = inst_.fold_s ? monotonic_time_s() : 0.0;
  for (const SpeedEstimate& e : estimates) fusion_.add(e);
  if (inst_.fold_s) inst_.fold_s->record(monotonic_time_s() - start);
}

TrafficServer::TripReport TrafficServer::process_trip(const TripUpload& trip) {
  const double start = inst_.trip_s ? monotonic_time_s() : 0.0;
  if (durability_ && (!opened_ || closed_)) {
    TripReport rejected;
    rejected.outcome = IngestOutcome::kRejected;
    rejected.reject_reason = RejectReason::kShutdown;
    return rejected;
  }
  const TripUpload* use = &trip;
  TripUpload corrected;
  AdmitInfo info;
  if (admission_) {
    const RejectReason why = admission_->admit(trip, corrected, use, &info);
    if (why != RejectReason::kNone) {
      TripReport rejected;
      rejected.outcome = IngestOutcome::kRejected;
      rejected.reject_reason = why;
      return rejected;
    }
  }
  // Write-ahead: the admitted upload reaches the log before any of its
  // estimates touch the fusion state.
  if (durability_) durability_->append_trip(0, *use, info);
  TripReport report = analyze_trip(*use);
  ingest(report.estimates);
  ++trips_processed_;
  if (inst_.trip_s) {
    inst_.trip_s->record(monotonic_time_s() - start);
    inst_.trips->inc();
  }
  return report;
}

void TrafficServer::advance_time(SimTime now) {
  if (durability_ && opened_ && !closed_) durability_->append_time_mark(now);
  if (admission_) admission_->observe_time(now);
  fusion_.flush_until(now);
}

void TrafficServer::apply_recovered(const WalRecord& record,
                                    RecoveryReport* report) {
  if (record.type == WalRecordType::kTimeMark) {
    // Watermark only — fusion periods are never closed during replay, so
    // shard/segment replay order cannot change what flush_until() sees.
    if (admission_) admission_->observe_time(record.mark_time);
    ++report->replayed_time_marks;
    return;
  }
  if (admission_) {
    admission_->note_replayed(record.signature, record.trip.participant_id,
                              record.skew_offset_s);
  }
  const TripReport trip_report = analyze_trip(record.trip);
  ingest(trip_report.estimates);
  ++trips_processed_;
  ++report->replayed_trips;
}

RecoveryReport TrafficServer::open() {
  RecoveryReport report;
  if (!durability_) {
    opened_ = true;
    return report;
  }
  report.durable = true;
  DurabilityManager::Recovery recovery = durability_->open();
  if (recovery.checkpoint) {
    report.checkpoint_loaded = true;
    report.checkpoint_id = recovery.checkpoint->id;
    fusion_.restore_state(recovery.checkpoint->state.fusion);
    trips_processed_ = recovery.checkpoint->state.trips_processed;
    if (admission_ && !recovery.checkpoint->state.admission.empty()) {
      admission_->restore_state(recovery.checkpoint->state.admission.front());
    }
  }
  for (const WalRecord& record : recovery.replay.front()) {
    apply_recovered(record, &report);
  }
  report.duplicate_records = recovery.duplicate_records;
  report.truncated_tail_bytes = recovery.truncated_tail_bytes;
  report.recovered_trips_per_segment = std::move(recovery.recovered_trips);
  opened_ = true;
  return report;
}

std::uint64_t TrafficServer::checkpoint() {
  if (!durability_ || !opened_ || closed_) return 0;
  CheckpointState state;
  state.trips_processed = trips_processed_;
  state.fusion = fusion_.export_state();
  if (admission_) state.admission.push_back(admission_->export_state());
  return durability_->save_checkpoint(std::move(state));
}

void TrafficServer::close() {
  if (durability_ && opened_ && !closed_) durability_->close();
  closed_ = true;
}

TrafficMap TrafficServer::snapshot(SimTime now, double max_age_s) const {
  return TrafficMap::snapshot(fusion_, catalog_, now, max_age_s);
}

std::uint64_t TrafficServer::publish_epoch(EpochPublisher& publisher,
                                           SimTime now,
                                           double max_age_s) const {
  return publisher.publish_from(fusion_, now, max_age_s);
}

}  // namespace bussense
