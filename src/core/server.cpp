#include "core/server.h"

#include <algorithm>
#include <stdexcept>

#include "core/epoch_publisher.h"

namespace bussense {

void ServerConfig::validate() const {
  matcher.validate();
  if (!(clustering.max_score > 0.0)) {
    throw std::invalid_argument("ServerConfig: clustering.max_score must be > 0");
  }
  if (!(clustering.max_gap_s > 0.0)) {
    throw std::invalid_argument("ServerConfig: clustering.max_gap_s must be > 0");
  }
  if (!(fusion.update_period_s > 0.0)) {
    throw std::invalid_argument(
        "ServerConfig: fusion.update_period_s must be > 0");
  }
  if (!(fusion.observation_variance > 0.0)) {
    throw std::invalid_argument(
        "ServerConfig: fusion.observation_variance must be > 0");
  }
  if (!(fusion.variance_floor >= 0.0)) {
    throw std::invalid_argument(
        "ServerConfig: fusion.variance_floor must be >= 0");
  }
  if (!(fusion.process_noise_per_s >= 0.0)) {
    throw std::invalid_argument(
        "ServerConfig: fusion.process_noise_per_s must be >= 0");
  }
  admission.validate();
}

TrafficServer::TrafficServer(const City& city, StopDatabase database,
                             ServerConfig config)
    : city_(&city),
      database_(std::move(database)),
      config_(config),
      route_graph_(city),
      catalog_(city),
      matcher_(database_, config_.matcher),
      mapper_(route_graph_),
      estimator_(catalog_, config_.att),
      fusion_(config_.fusion),
      metrics_(std::make_unique<MetricsRegistry>()) {
  config_.validate();
  if (config_.admission.enabled) {
    admission_ = std::make_unique<AdmissionController>(config_.admission);
  }
  if (config_.obs.enabled) {
    inst_.trips = &metrics_->counter("pipeline.trips");
    inst_.samples_considered = &metrics_->counter("pipeline.samples_considered");
    inst_.samples_rejected = &metrics_->counter("pipeline.samples_rejected");
    inst_.samples_matched = &metrics_->counter("pipeline.samples_matched");
    inst_.clusters = &metrics_->counter("pipeline.clusters");
    inst_.estimates = &metrics_->counter("pipeline.estimates");
    inst_.match_s = &metrics_->histogram("pipeline.match_s");
    inst_.cluster_s = &metrics_->histogram("pipeline.cluster_s");
    inst_.map_s = &metrics_->histogram("pipeline.map_s");
    inst_.estimate_s = &metrics_->histogram("pipeline.estimate_s");
    inst_.fold_s = &metrics_->histogram("fusion.fold_s");
    inst_.trip_s = &metrics_->histogram("pipeline.trip_s");
    matcher_.bind_metrics(metrics_.get());
    if (admission_) admission_->bind_metrics(metrics_.get());
  }
}

std::vector<MatchedSample> TrafficServer::match_samples(
    const TripUpload& trip, std::size_t* rejected) const {
  const double start = inst_.match_s ? monotonic_time_s() : 0.0;
  std::vector<MatchedSample> matched;
  std::size_t dropped = 0;
  for (const CellularSample& sample : trip.samples) {
    if (sample.fingerprint.empty()) {  // malformed or censored sample
      ++dropped;
      continue;
    }
    if (const auto result = matcher_.match(sample.fingerprint)) {
      matched.push_back(MatchedSample{sample, result->stop, result->score});
    } else {
      ++dropped;
    }
  }
  // Uploads come from unsynchronised phones over lossy links: never trust
  // their sample ordering (the clustering stage requires time order).
  std::stable_sort(matched.begin(), matched.end(),
                   [](const MatchedSample& a, const MatchedSample& b) {
                     return a.sample.time < b.sample.time;
                   });
  if (rejected) *rejected = dropped;
  if (inst_.match_s) {
    inst_.match_s->record(monotonic_time_s() - start);
    inst_.samples_considered->add(trip.samples.size());
    inst_.samples_rejected->add(dropped);
    inst_.samples_matched->add(matched.size());
  }
  return matched;
}

std::vector<SampleCluster> TrafficServer::cluster_samples(
    const std::vector<MatchedSample>& matched) const {
  const double start = inst_.cluster_s ? monotonic_time_s() : 0.0;
  std::vector<SampleCluster> clusters;
  if (config_.stages.clustering) {
    clusters = bussense::cluster_samples(matched, config_.clustering);
  } else {
    // Ablation: each sample becomes its own singleton cluster.
    clusters.reserve(matched.size());
    for (const MatchedSample& m : matched) {
      SampleCluster c;
      c.members.push_back(m);
      c.candidates.push_back(StopCandidate{m.stop, 1.0, m.score});
      clusters.push_back(std::move(c));
    }
  }
  if (inst_.cluster_s) {
    inst_.cluster_s->record(monotonic_time_s() - start);
    inst_.clusters->add(clusters.size());
  }
  return clusters;
}

MappedTrip TrafficServer::map_trip(
    const std::vector<SampleCluster>& clusters) const {
  const double start = inst_.map_s ? monotonic_time_s() : 0.0;
  MappedTrip trip;
  if (config_.stages.trip_mapping) {
    trip = mapper_.map_trip(clusters);
  } else {
    // Ablation: take each cluster's best candidate with no sequence
    // reasoning.
    for (const SampleCluster& c : clusters) {
      trip.stops.push_back(MappedCluster{c, c.best_candidate().stop});
    }
  }
  if (inst_.map_s) inst_.map_s->record(monotonic_time_s() - start);
  return trip;
}

TrafficServer::TripReport TrafficServer::analyze_trip(
    const TripUpload& trip) const {
  TripReport report;
  report.matched = match_samples(trip, &report.rejected_samples);
  const auto clusters = cluster_samples(report.matched);
  report.mapped = map_trip(clusters);
  const double start = inst_.estimate_s ? monotonic_time_s() : 0.0;
  report.estimates = estimator_.estimate(report.mapped);
  if (inst_.estimate_s) {
    inst_.estimate_s->record(monotonic_time_s() - start);
    inst_.estimates->add(report.estimates.size());
  }
  return report;
}

void TrafficServer::ingest(const std::vector<SpeedEstimate>& estimates) {
  const double start = inst_.fold_s ? monotonic_time_s() : 0.0;
  for (const SpeedEstimate& e : estimates) fusion_.add(e);
  if (inst_.fold_s) inst_.fold_s->record(monotonic_time_s() - start);
}

TrafficServer::TripReport TrafficServer::process_trip(const TripUpload& trip) {
  const double start = inst_.trip_s ? monotonic_time_s() : 0.0;
  const TripUpload* use = &trip;
  TripUpload corrected;
  if (admission_) {
    const RejectReason why = admission_->admit(trip, corrected, use);
    if (why != RejectReason::kNone) {
      TripReport rejected;
      rejected.outcome = IngestOutcome::kRejected;
      rejected.reject_reason = why;
      return rejected;
    }
  }
  TripReport report = analyze_trip(*use);
  ingest(report.estimates);
  ++trips_processed_;
  if (inst_.trip_s) {
    inst_.trip_s->record(monotonic_time_s() - start);
    inst_.trips->inc();
  }
  return report;
}

TrafficMap TrafficServer::snapshot(SimTime now, double max_age_s) const {
  return TrafficMap::snapshot(fusion_, catalog_, now, max_age_s);
}

std::uint64_t TrafficServer::publish_epoch(EpochPublisher& publisher,
                                           SimTime now,
                                           double max_age_s) const {
  return publisher.publish_from(fusion_, now, max_age_s);
}

}  // namespace bussense
