#include "core/clustering.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace bussense {

double cluster_affinity(const MatchedSample& a, const MatchedSample& b,
                        const ClusteringConfig& config) {
  const double dt = std::abs(b.sample.time - a.sample.time);
  const double time_term = (config.max_gap_s - dt) / config.max_gap_s;
  double l = 0.0;
  if (a.stop == b.stop && a.stop != kInvalidStop) {
    l = (config.max_score - std::abs(b.score - a.score)) / config.max_score;
  }
  return time_term + l;
}

namespace {

void finalize(SampleCluster& cluster) {
  struct Acc {
    int count = 0;
    double score_sum = 0.0;
  };
  std::map<StopId, Acc> by_stop;
  for (const MatchedSample& m : cluster.members) {
    Acc& acc = by_stop[m.stop];
    ++acc.count;
    acc.score_sum += m.score;
  }
  const double total = static_cast<double>(cluster.members.size());
  for (const auto& [stop, acc] : by_stop) {
    cluster.candidates.push_back(StopCandidate{
        stop, static_cast<double>(acc.count) / total,
        acc.score_sum / static_cast<double>(acc.count)});
  }
  std::sort(cluster.candidates.begin(), cluster.candidates.end(),
            [](const StopCandidate& a, const StopCandidate& b) {
              return a.probability > b.probability ||
                     (a.probability == b.probability &&
                      a.mean_similarity > b.mean_similarity);
            });
}

}  // namespace

std::vector<SampleCluster> cluster_samples(
    const std::vector<MatchedSample>& samples, const ClusteringConfig& config) {
  for (std::size_t i = 1; i < samples.size(); ++i) {
    if (samples[i].sample.time < samples[i - 1].sample.time) {
      throw std::invalid_argument("cluster_samples: samples must be time-ordered");
    }
  }
  std::vector<SampleCluster> clusters;
  for (const MatchedSample& s : samples) {
    bool joined = false;
    if (!clusters.empty()) {
      for (const MatchedSample& member : clusters.back().members) {
        if (cluster_affinity(member, s, config) > config.epsilon) {
          joined = true;
          break;
        }
      }
    }
    if (!joined) clusters.emplace_back();
    clusters.back().members.push_back(s);
  }
  for (SampleCluster& c : clusters) finalize(c);
  return clusters;
}

}  // namespace bussense
