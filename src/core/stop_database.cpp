#include "core/stop_database.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace bussense {

namespace {
// int16 ranks with negative sentinels reserved: ranks 0..32767.
constexpr std::size_t kMaxRanks = 32768;
}  // namespace

StopDatabase::StopDatabase(const StopDatabase& other)
    : records_(other.records_),
      index_(other.index_),
      postings_(other.postings_) {}

StopDatabase& StopDatabase::operator=(const StopDatabase& other) {
  if (this != &other) {
    records_ = other.records_;
    index_ = other.index_;
    postings_ = other.postings_;
    quantized_ready_.store(false, std::memory_order_release);
  }
  return *this;
}

StopDatabase::StopDatabase(StopDatabase&& other) noexcept
    : records_(std::move(other.records_)),
      index_(std::move(other.index_)),
      postings_(std::move(other.postings_)) {
  other.quantized_ready_.store(false, std::memory_order_release);
}

StopDatabase& StopDatabase::operator=(StopDatabase&& other) noexcept {
  if (this != &other) {
    records_ = std::move(other.records_);
    index_ = std::move(other.index_);
    postings_ = std::move(other.postings_);
    quantized_ready_.store(false, std::memory_order_release);
    other.quantized_ready_.store(false, std::memory_order_release);
  }
  return *this;
}

void StopDatabase::add(StopId effective_stop, Fingerprint fingerprint) {
  quantized_ready_.store(false, std::memory_order_release);
  if (const auto it = index_.find(effective_stop); it != index_.end()) {
    const auto rec = static_cast<std::uint32_t>(it->second);
    unindex_cells(rec);
    records_[it->second].fingerprint = std::move(fingerprint);
    index_cells(rec);
    return;
  }
  index_.emplace(effective_stop, records_.size());
  records_.push_back(StopRecord{effective_stop, std::move(fingerprint)});
  index_cells(static_cast<std::uint32_t>(records_.size() - 1));
}

void StopDatabase::index_cells(std::uint32_t record) {
  for (const CellId cell : records_[record].fingerprint.cells) {
    std::vector<std::uint32_t>& list = postings_[cell];
    // Keep lists ascending so candidate generation visits records in
    // database order (which fixes tie-breaking identically to the scan).
    list.insert(std::upper_bound(list.begin(), list.end(), record), record);
  }
}

void StopDatabase::unindex_cells(std::uint32_t record) {
  for (const CellId cell : records_[record].fingerprint.cells) {
    const auto it = postings_.find(cell);
    if (it == postings_.end()) continue;
    std::vector<std::uint32_t>& list = it->second;
    // Erase one occurrence (duplicated cells post one entry each).
    const auto pos = std::find(list.begin(), list.end(), record);
    if (pos != list.end()) list.erase(pos);
    if (list.empty()) postings_.erase(it);
  }
}

const std::vector<std::uint32_t>* StopDatabase::postings(CellId cell) const {
  const auto it = postings_.find(cell);
  if (it == postings_.end()) return nullptr;
  return &it->second;
}

const StopDatabase::QuantizedView& StopDatabase::quantized() const {
  // Double-checked lazy build: the hot path (matcher batch scoring) pays one
  // acquire load; the first caller after a mutation rebuilds under the lock.
  if (!quantized_ready_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(quantized_mutex_);
    if (!quantized_ready_.load(std::memory_order_relaxed)) {
      auto view = std::make_unique<QuantizedView>();
      build_quantized(*view);
      quantized_ = std::move(view);
      quantized_ready_.store(true, std::memory_order_release);
    }
  }
  return *quantized_;
}

void StopDatabase::build_quantized(QuantizedView& view) const {
  view.record.resize(records_.size());
  // Length-class grouping: lay the rank arrays out in (length, record id)
  // order so same-length candidates — which the kernel batches together —
  // sit contiguously. RecordRef keeps O(1) lookup by record position.
  std::vector<std::uint32_t> order(records_.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return records_[a].fingerprint.cells.size() <
                            records_[b].fingerprint.cells.size();
                   });
  std::size_t total = 0;
  for (const StopRecord& r : records_) total += r.fingerprint.cells.size();
  view.ranks.reserve(total);
  view.valid = true;
  for (const std::uint32_t rec : order) {
    const std::vector<CellId>& cells = records_[rec].fingerprint.cells;
    view.record[rec] = {static_cast<std::uint32_t>(view.ranks.size()),
                        static_cast<std::uint32_t>(cells.size())};
    for (const CellId cell : cells) {
      const auto it = view.dictionary.find(cell);
      if (it != view.dictionary.end()) {
        view.ranks.push_back(it->second);
        continue;
      }
      if (view.dictionary.size() >= kMaxRanks) {
        // Rank space exhausted: mark the whole view unusable (callers keep
        // the scalar representation) but leave it structurally consistent.
        view.valid = false;
        view.ranks.push_back(simd::kUnknownRank);
        continue;
      }
      const auto rank = static_cast<std::int16_t>(view.dictionary.size());
      view.dictionary.emplace(cell, rank);
      view.ranks.push_back(rank);
    }
  }
}

const Fingerprint* StopDatabase::fingerprint_of(StopId effective_stop) const {
  const auto it = index_.find(effective_stop);
  if (it == index_.end()) return nullptr;
  return &records_[it->second].fingerprint;
}

Fingerprint select_representative(const std::vector<Fingerprint>& samples,
                                  const MatchingConfig& config) {
  if (samples.empty()) {
    throw std::invalid_argument("select_representative: no samples");
  }
  std::size_t best = 0;
  double best_total = -1.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    double total = 0.0;
    for (std::size_t j = 0; j < samples.size(); ++j) {
      if (i != j) total += similarity(samples[i], samples[j], config);
    }
    if (total > best_total) {
      best_total = total;
      best = i;
    }
  }
  return samples[best];
}

StopDatabase build_stop_database(
    const City& city,
    const std::function<Fingerprint(StopId stop, int run)>& scan,
    int runs_per_stop, const MatchingConfig& config) {
  if (runs_per_stop < 1) {
    throw std::invalid_argument("build_stop_database: runs_per_stop < 1");
  }
  StopDatabase db;
  for (const BusStop& stop : city.stops()) {
    const StopId eff = city.effective_stop(stop.id);
    if (eff != stop.id) continue;  // twin handled via its canonical id
    std::vector<Fingerprint> samples;
    samples.reserve(static_cast<std::size_t>(runs_per_stop));
    for (int r = 0; r < runs_per_stop; ++r) {
      Fingerprint fp = scan(stop.id, r);
      if (!fp.empty()) samples.push_back(std::move(fp));
    }
    if (samples.empty()) continue;
    db.add(eff, select_representative(samples, config));
  }
  return db;
}

}  // namespace bussense
