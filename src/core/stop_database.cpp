#include "core/stop_database.h"

#include <stdexcept>

namespace bussense {

void StopDatabase::add(StopId effective_stop, Fingerprint fingerprint) {
  if (const auto it = index_.find(effective_stop); it != index_.end()) {
    records_[it->second].fingerprint = std::move(fingerprint);
    return;
  }
  index_.emplace(effective_stop, records_.size());
  records_.push_back(StopRecord{effective_stop, std::move(fingerprint)});
}

const Fingerprint* StopDatabase::fingerprint_of(StopId effective_stop) const {
  const auto it = index_.find(effective_stop);
  if (it == index_.end()) return nullptr;
  return &records_[it->second].fingerprint;
}

Fingerprint select_representative(const std::vector<Fingerprint>& samples,
                                  const MatchingConfig& config) {
  if (samples.empty()) {
    throw std::invalid_argument("select_representative: no samples");
  }
  std::size_t best = 0;
  double best_total = -1.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    double total = 0.0;
    for (std::size_t j = 0; j < samples.size(); ++j) {
      if (i != j) total += similarity(samples[i], samples[j], config);
    }
    if (total > best_total) {
      best_total = total;
      best = i;
    }
  }
  return samples[best];
}

StopDatabase build_stop_database(
    const City& city,
    const std::function<Fingerprint(StopId stop, int run)>& scan,
    int runs_per_stop, const MatchingConfig& config) {
  if (runs_per_stop < 1) {
    throw std::invalid_argument("build_stop_database: runs_per_stop < 1");
  }
  StopDatabase db;
  for (const BusStop& stop : city.stops()) {
    const StopId eff = city.effective_stop(stop.id);
    if (eff != stop.id) continue;  // twin handled via its canonical id
    std::vector<Fingerprint> samples;
    samples.reserve(static_cast<std::size_t>(runs_per_stop));
    for (int r = 0; r < runs_per_stop; ++r) {
      Fingerprint fp = scan(stop.id, r);
      if (!fp.empty()) samples.push_back(std::move(fp));
    }
    if (samples.empty()) continue;
    db.add(eff, select_representative(samples, config));
  }
  return db;
}

}  // namespace bussense
