#include "core/stop_database.h"

#include <algorithm>
#include <stdexcept>

namespace bussense {

void StopDatabase::add(StopId effective_stop, Fingerprint fingerprint) {
  if (const auto it = index_.find(effective_stop); it != index_.end()) {
    const auto rec = static_cast<std::uint32_t>(it->second);
    unindex_cells(rec);
    records_[it->second].fingerprint = std::move(fingerprint);
    index_cells(rec);
    return;
  }
  index_.emplace(effective_stop, records_.size());
  records_.push_back(StopRecord{effective_stop, std::move(fingerprint)});
  index_cells(static_cast<std::uint32_t>(records_.size() - 1));
}

void StopDatabase::index_cells(std::uint32_t record) {
  for (const CellId cell : records_[record].fingerprint.cells) {
    std::vector<std::uint32_t>& list = postings_[cell];
    // Keep lists ascending so candidate generation visits records in
    // database order (which fixes tie-breaking identically to the scan).
    list.insert(std::upper_bound(list.begin(), list.end(), record), record);
  }
}

void StopDatabase::unindex_cells(std::uint32_t record) {
  for (const CellId cell : records_[record].fingerprint.cells) {
    const auto it = postings_.find(cell);
    if (it == postings_.end()) continue;
    std::vector<std::uint32_t>& list = it->second;
    // Erase one occurrence (duplicated cells post one entry each).
    const auto pos = std::find(list.begin(), list.end(), record);
    if (pos != list.end()) list.erase(pos);
    if (list.empty()) postings_.erase(it);
  }
}

const std::vector<std::uint32_t>* StopDatabase::postings(CellId cell) const {
  const auto it = postings_.find(cell);
  if (it == postings_.end()) return nullptr;
  return &it->second;
}

const Fingerprint* StopDatabase::fingerprint_of(StopId effective_stop) const {
  const auto it = index_.find(effective_stop);
  if (it == index_.end()) return nullptr;
  return &records_[it->second].fingerprint;
}

Fingerprint select_representative(const std::vector<Fingerprint>& samples,
                                  const MatchingConfig& config) {
  if (samples.empty()) {
    throw std::invalid_argument("select_representative: no samples");
  }
  std::size_t best = 0;
  double best_total = -1.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    double total = 0.0;
    for (std::size_t j = 0; j < samples.size(); ++j) {
      if (i != j) total += similarity(samples[i], samples[j], config);
    }
    if (total > best_total) {
      best_total = total;
      best = i;
    }
  }
  return samples[best];
}

StopDatabase build_stop_database(
    const City& city,
    const std::function<Fingerprint(StopId stop, int run)>& scan,
    int runs_per_stop, const MatchingConfig& config) {
  if (runs_per_stop < 1) {
    throw std::invalid_argument("build_stop_database: runs_per_stop < 1");
  }
  StopDatabase db;
  for (const BusStop& stop : city.stops()) {
    const StopId eff = city.effective_stop(stop.id);
    if (eff != stop.id) continue;  // twin handled via its canonical id
    std::vector<Fingerprint> samples;
    samples.reserve(static_cast<std::size_t>(runs_per_stop));
    for (int r = 0; r < runs_per_stop; ++r) {
      Fingerprint fp = scan(stop.id, r);
      if (!fp.empty()) samples.push_back(std::move(fp));
    }
    if (samples.empty()) continue;
    db.add(eff, select_representative(samples, config));
  }
  return db;
}

}  // namespace bussense
