// Route order constraints over effective stops (paper Section III-C.3).
//
// R(x, y) = 1 if stop y lies behind (after) stop x on some directed route —
// a bus could visit y after x, possibly skipping stops in between — or if
// x == y; R(x, y) = −1 otherwise. The relation considers all routes, so a
// trip spanning a transfer between concatenated routes is still scored
// consistently.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "citynet/city.h"
#include "citynet/types.h"

namespace bussense {

class RouteGraph {
 public:
  explicit RouteGraph(const City& city);

  /// The paper's R(x, y) over effective stop ids.
  int relation(StopId x, StopId y) const;

  /// True if y is strictly behind x on some directed route.
  bool reachable(StopId x, StopId y) const;

  /// Effective stop sequence of a directed route.
  const std::vector<StopId>& route_sequence(RouteId id) const {
    return sequences_.at(static_cast<std::size_t>(id));
  }

  std::size_t route_count() const { return sequences_.size(); }

 private:
  static std::uint64_t key(StopId x, StopId y) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(x)) << 32) |
           static_cast<std::uint32_t>(y);
  }

  std::vector<std::vector<StopId>> sequences_;
  std::unordered_set<std::uint64_t> behind_;  ///< pairs (x, y) with y after x
};

}  // namespace bussense
