#include "core/db_updater.h"

#include <algorithm>
#include <set>

namespace bussense {

namespace {

/// True if `middle` is the single stop between `before` and `after` on some
/// directed route.
bool is_single_gap(const RouteGraph& graph, StopId before, StopId after,
                   StopId* middle, std::size_t route_count) {
  for (RouteId r = 0; r < static_cast<RouteId>(route_count); ++r) {
    const auto& seq = graph.route_sequence(r);
    for (std::size_t i = 0; i + 2 < seq.size(); ++i) {
      if (seq[i] == before && seq[i + 2] == after) {
        *middle = seq[i + 1];
        return true;
      }
    }
  }
  return false;
}

}  // namespace

DatabaseUpdater::DatabaseUpdater(DbUpdaterConfig config)
    : config_(std::move(config)) {}

bool DatabaseUpdater::learn(StopId stop,
                            const std::vector<Fingerprint>& fingerprints,
                            StopDatabase& database, bool bypass_guards) {
  auto& window = recent_[stop];
  for (const Fingerprint& fp : fingerprints) {
    if (fp.empty()) continue;
    window.push_back(fp);
    ++observations_;
    if (window.size() > config_.window) window.pop_front();
  }
  if (window.size() < config_.refresh_after) return false;

  const Fingerprint* current = database.fingerprint_of(stop);
  // Health check: a database entry that still aligns with the fresh window
  // is left alone; only demonstrable decay triggers a refresh.
  if (current != nullptr && !current->empty()) {
    double mean_sim = 0.0;
    for (const Fingerprint& fp : window) {
      mean_sim += similarity(fp, *current, config_.matching);
    }
    mean_sim /= static_cast<double>(window.size());
    if (mean_sim >= config_.refresh_below_similarity) return false;
  }
  const std::vector<Fingerprint> samples(window.begin(), window.end());
  Fingerprint winner = select_representative(samples, config_.matching);
  // Continuity guard — except for hole recovery, whose stop identity comes
  // from the trip context, not from matching against the decayed entry.
  if (!bypass_guards && current != nullptr && !current->empty() &&
      similarity(winner, *current, config_.matching) <
          config_.min_continuity_similarity) {
    return false;
  }
  database.add(stop, std::move(winner));
  ++refreshes_;
  return true;
}

int DatabaseUpdater::observe(const MappedTrip& trip, StopDatabase& database) {
  int refreshed = 0;
  for (const MappedCluster& mc : trip.stops) {
    const StopCandidate& best = mc.cluster.best_candidate();
    if (best.stop != mc.stop) continue;  // mapping overrode the local match
    if (mc.cluster.members.size() < config_.min_cluster_size ||
        best.probability < config_.min_probability ||
        best.mean_similarity < config_.min_mean_similarity) {
      continue;
    }
    std::vector<Fingerprint> fresh;
    fresh.reserve(mc.cluster.members.size());
    for (const MatchedSample& m : mc.cluster.members) {
      fresh.push_back(m.sample.fingerprint);
    }
    if (learn(mc.stop, fresh, database, /*bypass_guards=*/false)) ++refreshed;
  }
  return refreshed;
}

int DatabaseUpdater::recover_holes(const TripUpload& upload,
                                   const MappedTrip& mapped,
                                   const RouteGraph& graph,
                                   StopDatabase& database) {
  if (mapped.stops.size() < 2) return 0;
  // Times consumed by matched clusters; everything else is an orphan.
  std::set<double> matched_times;
  for (const MappedCluster& mc : mapped.stops) {
    for (const MatchedSample& m : mc.cluster.members) {
      matched_times.insert(m.sample.time);
    }
  }
  int refreshed = 0;
  for (std::size_t k = 0; k + 1 < mapped.stops.size(); ++k) {
    const MappedCluster& before = mapped.stops[k];
    const MappedCluster& after = mapped.stops[k + 1];
    // Both anchors must be confidently mapped.
    const auto confident = [&](const MappedCluster& mc) {
      const StopCandidate& best = mc.cluster.best_candidate();
      return best.stop == mc.stop && mc.cluster.members.size() >= 2 &&
             best.probability >= config_.min_probability &&
             best.mean_similarity >= config_.min_mean_similarity;
    };
    if (!confident(before) || !confident(after)) continue;
    StopId middle = kInvalidStop;
    if (!is_single_gap(graph, before.stop, after.stop, &middle,
                       graph.route_count())) {
      continue;
    }
    // Orphan samples strictly between the anchors.
    std::vector<Fingerprint> orphans;
    for (const CellularSample& s : upload.samples) {
      if (matched_times.contains(s.time)) continue;
      if (s.time > before.cluster.departure_time() &&
          s.time < after.cluster.arrival_time()) {
        orphans.push_back(s.fingerprint);
      }
    }
    if (orphans.size() < 2) continue;  // a lone false beep proves nothing
    if (learn(middle, orphans, database, /*bypass_guards=*/true)) ++refreshed;
  }
  return refreshed;
}

}  // namespace bussense
