// Plain-text serialization for the artefacts that cross process boundaries
// in a real deployment: the surveyed stop-fingerprint database (built by
// the war-walk tool, loaded by the server) and batches of trip uploads
// (queued on phones, drained by the server).
//
// The formats are line-oriented and versioned:
//
//   bussense-stopdb v1          bussense-trips v1
//   stop <id> <id,id,...>       trip <participant> <n>
//   ...                         sample <time> <id,id,...>   (n lines)
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/stop_database.h"
#include "sensing/trip.h"

namespace bussense {

// The loaders treat their input as hostile (uploads cross a network in a
// real deployment): count fields are bounds-checked before any allocation
// (≤ 2²⁰ samples/trip, ≤ 4096 cells/fingerprint, no trust in the count for
// reserve), cell ids and stop ids must parse exactly and in range, and
// sample times must be finite. The contract — fuzz-tested with ≥ 10k
// deterministic mutations per loader — is: either the returned value
// re-serialises to a loadable equal document, or std::runtime_error is
// thrown; never a crash, hang or partially populated result.

void save_stop_database(const StopDatabase& database, std::ostream& os);
/// Throws std::runtime_error on malformed input.
StopDatabase load_stop_database(std::istream& is);

void save_trips(const std::vector<TripUpload>& trips, std::ostream& os);
/// Throws std::runtime_error on malformed input.
std::vector<TripUpload> load_trips(std::istream& is);

/// Convenience: file-path overloads (throw std::runtime_error on IO errors).
void save_stop_database(const StopDatabase& database, const std::string& path);
StopDatabase load_stop_database(const std::string& path);

}  // namespace bussense
