// Checkpoint/restore + the DurabilityManager façade over the WAL
// (DESIGN.md §14).
//
// A checkpoint is one atomic file capturing everything the ingest tier
// cannot recompute from the WAL suffix alone: the fusion state (fused
// posteriors + open period batches), the admission controller state(s)
// (dedup LRU, skew table, watermark) and the processed-trip counter, plus
// the per-segment WAL sequence number each of those states covers.
// Recovery = load the newest *valid* checkpoint (CRC-checked; corrupt or
// half-written files are skipped, falling back to older ones or to a full
// WAL replay) → replay every WAL record with seq > covers_seq.
//
//   file := magic "BSCKPT1\n" body u32 crc32(body)
//   body := u64 id | u32 n_segments | u64 covers_seq*
//           | u64 trips_processed
//           | u32 n_fusion  | fusion_entry*
//           | u32 n_admission | admission_state*
//
// Writes are atomic: body to `checkpoint-<id>.tmp`, fsync, rename to
// `.ckpt`, fsync the directory — a crash mid-checkpoint leaves either the
// previous checkpoint set or the complete new file, never a half state.
// Fusion entries are sorted by key with sorted pending values and the
// admission exports are canonical (core/fusion.h, core/admission.h), so
// checkpointing the same logical state yields byte-identical files.
//
// DurabilityManager bundles N WAL segment writers (one for serial front
// ends, one per shard for ShardedIngestService) with the checkpoint
// directory and the durability.* instruments; the TrafficIngestor
// open()/checkpoint()/close() lifecycle phases are thin wrappers over it.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/admission.h"
#include "core/config_common.h"
#include "core/fusion.h"
#include "core/trip_log.h"
#include "obs/metrics.h"

namespace bussense {

struct CheckpointState {
  /// Highest WAL seq per segment whose effects the state below includes;
  /// recovery replays only records with seq > covers_seq[segment]. Stamped
  /// by DurabilityManager::save_checkpoint.
  std::vector<std::uint64_t> covers_seq;
  std::uint64_t trips_processed = 0;
  std::vector<FusionExportEntry> fusion;  ///< sorted by key
  /// One entry per admission controller: empty when admission is off, one
  /// for the serial/concurrent front ends, one per shard when sharded.
  std::vector<AdmissionCheckpoint> admission;
};

std::vector<std::uint8_t> encode_checkpoint(std::uint64_t id,
                                            const CheckpointState& state);
bool decode_checkpoint(const std::uint8_t* data, std::size_t size,
                       std::uint64_t* id, CheckpointState* state);

struct LoadedCheckpoint {
  std::uint64_t id = 0;
  CheckpointState state;
};

/// Newest checkpoint in `directory` that passes CRC + decode; corrupt files
/// are skipped (older valid checkpoints win). nullopt when none is usable.
std::optional<LoadedCheckpoint> load_latest_checkpoint(
    const std::string& directory);

/// Atomic write of `checkpoint-<id>.ckpt` (tmp + fsync + rename + dir
/// fsync). Throws std::runtime_error on I/O failure.
void save_checkpoint_file(const std::string& directory, std::uint64_t id,
                          const CheckpointState& state);

/// Deletes all but the newest `keep` valid-looking checkpoint files.
void prune_checkpoints(const std::string& directory, std::size_t keep);

class DurabilityManager {
 public:
  /// `segments` WAL files (`trips-<i>.wal`) under config.directory.
  DurabilityManager(DurabilityConfig config, std::size_t segments);

  DurabilityManager(const DurabilityManager&) = delete;
  DurabilityManager& operator=(const DurabilityManager&) = delete;

  struct Recovery {
    std::optional<LoadedCheckpoint> checkpoint;
    /// Per segment, the records to replay (seq > checkpoint covers_seq, or
    /// the whole log without a checkpoint), in seq order.
    std::vector<std::vector<WalRecord>> replay;
    /// Per segment, total durable kTrip records (checkpoint-covered +
    /// replayed): how many of the segment's admitted uploads survived.
    std::vector<std::uint64_t> recovered_trips;
    std::uint64_t truncated_tail_bytes = 0;
    std::uint64_t duplicate_records = 0;
  };

  /// Creates the directory, scans + repairs every segment, loads the
  /// newest valid checkpoint and opens the writers for appending. Must be
  /// called exactly once, before any append.
  Recovery open();

  /// Appends one admitted upload to a segment's WAL (write-ahead: call
  /// before applying its estimates). Thread-safe per the underlying
  /// writer. Returns the record's seq.
  std::uint64_t append_trip(std::size_t segment, const TripUpload& trip,
                            const AdmitInfo& info);

  /// Appends an advance_time barrier to every segment's WAL, so recovery
  /// restores the admission watermark(s).
  void append_time_mark(SimTime now);

  /// Syncs every WAL, stamps covers_seq, writes the checkpoint atomically
  /// and prunes old ones. The caller must be quiescent (no concurrent
  /// append) so covers_seq is exact. Returns the checkpoint id.
  std::uint64_t save_checkpoint(CheckpointState state);

  /// Final sync + close of every writer; further appends throw. Idempotent.
  void close();

  /// Registers durability.{appends,fsyncs,bytes_appended,checkpoints,
  /// recovered_records,truncated_tail_bytes} counters; null unbinds.
  void bind_metrics(MetricsRegistry* registry);

  std::size_t segments() const { return segment_count_; }
  bool opened() const { return !writers_.empty(); }
  const DurabilityConfig& config() const { return config_; }
  std::uint64_t last_checkpoint_id() const { return last_checkpoint_id_; }

 private:
  std::string segment_path(std::size_t segment) const;

  DurabilityConfig config_;
  std::size_t segment_count_;
  std::vector<std::unique_ptr<TripLogWriter>> writers_;
  std::uint64_t next_checkpoint_id_ = 1;
  std::uint64_t last_checkpoint_id_ = 0;

  struct Instruments {
    Counter* appends = nullptr;
    Counter* fsyncs = nullptr;
    Counter* bytes_appended = nullptr;
    Counter* checkpoints = nullptr;
    Counter* recovered_records = nullptr;
    Counter* truncated_tail_bytes = nullptr;
  };
  Instruments inst_;
};

}  // namespace bussense
