#include "core/trip_log.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace bussense {

namespace {

constexpr char kMagic[8] = {'B', 'S', 'W', 'A', 'L', '0', '1', '\n'};
constexpr std::size_t kFrameHeader = 8;  // u32 length + u32 crc

// Slice-by-8 tables: table[0] is the classic byte-at-a-time table, and
// table[k][b] = crc of byte b followed by k zero bytes — 8 bytes per loop
// iteration instead of 1 on the append hot path.
std::array<std::array<std::uint32_t, 256>, 8> make_crc_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (std::size_t k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      tables[k][i] =
          tables[0][tables[k - 1][i] & 0xffu] ^ (tables[k - 1][i] >> 8);
    }
  }
  return tables;
}

// Byte-wise little-endian stores into a pre-sized region: host-endianness
// independent, and contiguous enough for the compiler to fuse into single
// stores (the per-byte push_back form is not).
void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  const std::size_t n = out.size();
  out.resize(n + 2);
  for (int i = 0; i < 2; ++i) {
    out[n + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
  }
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  const std::size_t n = out.size();
  out.resize(n + 4);
  for (int i = 0; i < 4; ++i) {
    out[n + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  const std::size_t n = out.size();
  out.resize(n + 8);
  for (int i = 0; i < 8; ++i) {
    out[n + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
  }
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(out, bits);
}

// LEB128: 7 value bits per byte, high bit = continuation. Cell ids are
// small integers, so this is 1–2 bytes against a fixed u32 — and WAL bytes
// are what both the buffered write and the fsync dirty-data flush cost.
std::size_t varint_size(std::uint32_t v) {
  std::size_t n = 1;
  while (v >= 0x80u) {
    v >>= 7;
    ++n;
  }
  return n;
}

void put_varint(std::vector<std::uint8_t>& out, std::uint32_t v) {
  while (v >= 0x80u) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80u);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

// Bounds-checked little-endian reader over a byte span.
struct Reader {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;

  bool u8(std::uint8_t* v) {
    if (size - pos < 1) return false;
    *v = data[pos++];
    return true;
  }
  bool u16(std::uint16_t* v) {
    if (size - pos < 2) return false;
    *v = static_cast<std::uint16_t>(data[pos] |
                                    (static_cast<std::uint16_t>(data[pos + 1])
                                     << 8));
    pos += 2;
    return true;
  }
  bool u32(std::uint32_t* v) {
    if (size - pos < 4) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<std::uint32_t>(data[pos + static_cast<std::size_t>(i)])
            << (8 * i);
    }
    pos += 4;
    return true;
  }
  bool u64(std::uint64_t* v) {
    if (size - pos < 8) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<std::uint64_t>(data[pos + static_cast<std::size_t>(i)])
            << (8 * i);
    }
    pos += 8;
    return true;
  }
  bool f64(double* v) {
    std::uint64_t bits = 0;
    if (!u64(&bits)) return false;
    std::memcpy(v, &bits, sizeof *v);
    return true;
  }
  bool varint(std::uint32_t* v) {
    *v = 0;
    for (int shift = 0; shift < 35; shift += 7) {
      if (pos >= size) return false;
      const std::uint8_t byte = data[pos++];
      if (shift == 28 && (byte & ~0x0fu)) return false;  // > 32 bits
      *v |= static_cast<std::uint32_t>(byte & 0x7fu) << shift;
      if (!(byte & 0x80u)) return true;
    }
    return false;
  }
};

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) {
  static const std::array<std::array<std::uint32_t, 256>, 8> t =
      make_crc_tables();
  std::uint32_t c = 0xffffffffu;
  std::size_t i = 0;
  for (; size - i >= 8; i += 8) {
    std::uint32_t lo = 0;
    std::memcpy(&lo, data + i, 4);  // little-endian hosts only (asserted
    lo ^= c;                        // by the fixed-width wire format)
    c = t[7][lo & 0xffu] ^ t[6][(lo >> 8) & 0xffu] ^ t[5][(lo >> 16) & 0xffu] ^
        t[4][lo >> 24] ^ t[3][data[i + 4]] ^ t[2][data[i + 5]] ^
        t[1][data[i + 6]] ^ t[0][data[i + 7]];
  }
  for (; i < size; ++i) {
    c = t[0][(c ^ data[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

namespace {

std::size_t trip_payload_size(const TripUpload& trip) {
  std::size_t n = 1 + 8 + 8 + 8 + 4 + 4;  // type|seq|sig|skew|participant|count
  for (const CellularSample& sample : trip.samples) {
    n += 8 + 2;
    for (const CellId cell : sample.fingerprint.cells) {
      n += varint_size(static_cast<std::uint32_t>(cell));
    }
  }
  return n;
}

void encode_trip_payload(std::vector<std::uint8_t>& out, std::uint64_t seq,
                         std::uint64_t signature, double skew_offset_s,
                         const TripUpload& trip) {
  out.reserve(out.size() + trip_payload_size(trip));
  out.push_back(static_cast<std::uint8_t>(WalRecordType::kTrip));
  put_u64(out, seq);
  put_u64(out, signature);
  put_f64(out, skew_offset_s);
  put_u32(out, static_cast<std::uint32_t>(trip.participant_id));
  put_u32(out, static_cast<std::uint32_t>(trip.samples.size()));
  for (const CellularSample& sample : trip.samples) {
    put_f64(out, sample.time);
    put_u16(out, static_cast<std::uint16_t>(sample.fingerprint.size()));
    for (const CellId cell : sample.fingerprint.cells) {
      put_varint(out, static_cast<std::uint32_t>(cell));
    }
  }
}

void encode_time_mark_payload(std::vector<std::uint8_t>& out,
                              std::uint64_t seq, SimTime mark_time) {
  out.reserve(out.size() + 1 + 8 + 8);
  out.push_back(static_cast<std::uint8_t>(WalRecordType::kTimeMark));
  put_u64(out, seq);
  put_f64(out, mark_time);
}

}  // namespace

std::vector<std::uint8_t> encode_wal_payload(const WalRecord& record) {
  std::vector<std::uint8_t> out;
  if (record.type == WalRecordType::kTimeMark) {
    encode_time_mark_payload(out, record.seq, record.mark_time);
  } else {
    encode_trip_payload(out, record.seq, record.signature,
                        record.skew_offset_s, record.trip);
  }
  return out;
}

bool decode_wal_payload(const std::uint8_t* data, std::size_t size,
                        WalRecord* out) {
  Reader r{data, size};
  std::uint8_t type = 0;
  if (!r.u8(&type) || !r.u64(&out->seq)) return false;
  if (type == static_cast<std::uint8_t>(WalRecordType::kTimeMark)) {
    out->type = WalRecordType::kTimeMark;
    return r.f64(&out->mark_time) && r.pos == size;
  }
  if (type != static_cast<std::uint8_t>(WalRecordType::kTrip)) return false;
  out->type = WalRecordType::kTrip;
  std::uint32_t participant = 0;
  std::uint32_t n_samples = 0;
  if (!r.u64(&out->signature) || !r.f64(&out->skew_offset_s) ||
      !r.u32(&participant) || !r.u32(&n_samples)) {
    return false;
  }
  out->trip.participant_id = static_cast<std::int32_t>(participant);
  // A sample costs at least 10 bytes; a bit-flipped count must not drive a
  // huge allocation before the bounds checks can catch it.
  if (n_samples > (size - r.pos) / 10) return false;
  out->trip.samples.clear();
  out->trip.samples.reserve(n_samples);
  for (std::uint32_t i = 0; i < n_samples; ++i) {
    CellularSample sample;
    std::uint16_t n_cells = 0;
    if (!r.f64(&sample.time) || !r.u16(&n_cells)) return false;
    if (n_cells > size - r.pos) return false;  // a cell varint is >= 1 byte
    sample.fingerprint.cells.reserve(n_cells);
    for (std::uint16_t c = 0; c < n_cells; ++c) {
      std::uint32_t cell = 0;
      if (!r.varint(&cell)) return false;
      sample.fingerprint.cells.push_back(static_cast<CellId>(cell));
    }
    out->trip.samples.push_back(std::move(sample));
  }
  return r.pos == size;
}

WalScanResult scan_trip_log(const std::string& path, bool repair) {
  WalScanResult result;
  std::ifstream is(path, std::ios::binary);
  if (!is) return result;  // missing file == empty log
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(is)),
                                  std::istreambuf_iterator<char>());
  is.close();

  std::size_t pos = 0;
  if (bytes.size() < sizeof kMagic ||
      std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0) {
    // No valid header: the whole file is a torn tail (unless empty).
    result.torn = !bytes.empty();
    result.truncated_tail_bytes = bytes.size();
  } else {
    pos = sizeof kMagic;
    std::uint64_t last_seq = 0;
    while (pos < bytes.size()) {
      const std::size_t remaining = bytes.size() - pos;
      if (remaining < kFrameHeader) break;  // torn frame header
      Reader header{bytes.data() + pos, kFrameHeader};
      std::uint32_t length = 0, crc = 0;
      header.u32(&length);
      header.u32(&crc);
      if (length > remaining - kFrameHeader) break;  // overruns the file
      const std::uint8_t* payload = bytes.data() + pos + kFrameHeader;
      if (crc32(payload, length) != crc) break;  // bit flip / torn payload
      WalRecord record;
      if (!decode_wal_payload(payload, length, &record)) break;
      // A duplicated block replays already-seen seqs: skip, never re-apply.
      if (record.seq > last_seq) {
        last_seq = record.seq;
        if (record.type == WalRecordType::kTrip) ++result.trip_records;
        result.records.push_back(std::move(record));
      } else {
        ++result.duplicate_records;
      }
      pos += kFrameHeader + length;
    }
    result.next_seq = last_seq + 1;
    if (pos < bytes.size()) {
      result.torn = true;
      result.truncated_tail_bytes = bytes.size() - pos;
    }
  }

  if (repair && result.torn) {
    if (::truncate(path.c_str(), static_cast<off_t>(pos)) != 0) {
      throw std::runtime_error("trip log repair failed: " + path + ": " +
                               std::strerror(errno));
    }
  }
  return result;
}

// ------------------------------------------------------------ TripLogWriter

TripLogWriter::TripLogWriter(std::string path, FsyncPolicy policy,
                             std::uint64_t fsync_interval,
                             std::uint64_t next_seq)
    : path_(std::move(path)),
      policy_(policy),
      fsync_interval_(fsync_interval),
      next_seq_(next_seq) {
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("cannot open trip log " + path_ + ": " +
                             std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd_, &st) == 0 && st.st_size == 0) {
    if (::write(fd_, kMagic, sizeof kMagic) !=
        static_cast<ssize_t>(sizeof kMagic)) {
      ::close(fd_);
      fd_ = -1;
      throw std::runtime_error("cannot write trip log header: " + path_);
    }
  }
}

TripLogWriter::~TripLogWriter() {
  try {
    close();
  } catch (...) {
    // Destructor must not throw; close() failures surface on explicit use.
  }
}

TripLogWriter::AppendResult TripLogWriter::append(WalRecord record) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) throw std::runtime_error("append on closed trip log " + path_);
  record.seq = next_seq_;
  scratch_.clear();
  scratch_.resize(kFrameHeader);  // length + crc filled in below
  if (record.type == WalRecordType::kTimeMark) {
    encode_time_mark_payload(scratch_, record.seq, record.mark_time);
  } else {
    encode_trip_payload(scratch_, record.seq, record.signature,
                        record.skew_offset_s, record.trip);
  }
  return append_scratch_locked();
}

TripLogWriter::AppendResult TripLogWriter::append_trip(std::uint64_t signature,
                                                       double skew_offset_s,
                                                       const TripUpload& trip) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) throw std::runtime_error("append on closed trip log " + path_);
  scratch_.clear();
  scratch_.resize(kFrameHeader);
  encode_trip_payload(scratch_, next_seq_, signature, skew_offset_s, trip);
  return append_scratch_locked();
}

TripLogWriter::AppendResult TripLogWriter::append_time_mark(SimTime mark_time) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) throw std::runtime_error("append on closed trip log " + path_);
  scratch_.clear();
  scratch_.resize(kFrameHeader);
  encode_time_mark_payload(scratch_, next_seq_, mark_time);
  return append_scratch_locked();
}

// scratch_ holds 8 placeholder bytes followed by the payload (seq already
// encoded as next_seq_). Frames, writes and applies the fsync policy.
TripLogWriter::AppendResult TripLogWriter::append_scratch_locked() {
  const std::uint64_t seq = next_seq_++;
  const std::uint32_t length =
      static_cast<std::uint32_t>(scratch_.size() - kFrameHeader);
  const std::uint32_t crc = crc32(scratch_.data() + kFrameHeader, length);
  for (int i = 0; i < 4; ++i) {
    scratch_[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(length >> (8 * i));
    scratch_[static_cast<std::size_t>(4 + i)] =
        static_cast<std::uint8_t>(crc >> (8 * i));
  }
  // Group commit: frames accumulate in buffer_ and reach the kernel in
  // one write() per flush. sync_locked() flushes first, so the fsync
  // policies keep their tail-loss bounds; the destructor's close() also
  // flushes, so a scope-exit "crash" loses nothing the OS was given.
  buffer_.insert(buffer_.end(), scratch_.begin(), scratch_.end());
  ++appends_;
  ++appends_since_sync_;
  bytes_appended_ += scratch_.size();
  AppendResult result{seq, scratch_.size(), false};
  if (policy_ == FsyncPolicy::kEveryRecord ||
      (policy_ == FsyncPolicy::kInterval &&
       appends_since_sync_ >= fsync_interval_)) {
    sync_locked();
    result.synced = true;
  } else if (buffer_.size() >= kFlushThreshold) {
    flush_locked();
  }
  return result;
}

// Hands buffer_ to the kernel (no fsync).
void TripLogWriter::flush_locked() {
  std::size_t written = 0;
  while (written < buffer_.size()) {
    const ssize_t n = ::write(fd_, buffer_.data() + written,
                              buffer_.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("trip log append failed: " + path_ + ": " +
                               std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
  buffer_.clear();
}

void TripLogWriter::sync_locked() {
  if (fd_ < 0 || appends_since_sync_ == 0) return;
  flush_locked();
#ifdef __linux__
  // fdatasync still flushes the size change needed to read the appended
  // bytes back; it skips only timestamps — cheaper on ext4.
  if (::fdatasync(fd_) != 0) {
#else
  if (::fsync(fd_) != 0) {
#endif
    throw std::runtime_error("trip log fsync failed: " + path_ + ": " +
                             std::strerror(errno));
  }
  ++fsyncs_;
  appends_since_sync_ = 0;
}

void TripLogWriter::sync() {
  const std::lock_guard<std::mutex> lock(mutex_);
  sync_locked();
}

void TripLogWriter::close() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) return;
  sync_locked();
  ::close(fd_);
  fd_ = -1;
}

std::uint64_t TripLogWriter::last_seq() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return next_seq_ - 1;
}

std::uint64_t TripLogWriter::appends() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return appends_;
}

std::uint64_t TripLogWriter::fsyncs() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return fsyncs_;
}

std::uint64_t TripLogWriter::bytes_appended() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return bytes_appended_;
}

}  // namespace bussense
