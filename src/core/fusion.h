// Bayesian fusion of repeated speed estimates (paper Section III-D, Eq. 4).
//
// Each road segment accumulates estimates from many trips. Updates run on a
// period T (paper: 5 minutes): estimates arriving within one period are
// averaged into a single observation, then combined with the running
// estimate by the precision-weighted update
//
//   v_new = (v·σ̄² + v̄·σ²) / (σ² + σ̄²),   σ²_new = σ²σ̄² / (σ² + σ̄²)
//
// A variance floor keeps the fused estimate responsive after long streams
// of observations (without it σ² → 0 and new traffic would never register;
// the paper's 5-minute batching plus finite experiment length hides this —
// the floor is our documented stabilisation).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/sim_time.h"
#include "core/segment_catalog.h"
#include "core/travel_estimator.h"

namespace bussense {

struct FusionConfig {
  double update_period_s = 300.0;     ///< T (paper: 5 min)
  double observation_variance = 30.0; ///< σ̄² of one averaged observation (km/h)²
  double variance_floor = 4.0;        ///< lower bound on fused σ²
  /// Process noise: traffic drifts, so a stale estimate loses precision at
  /// this rate ((km/h)² per second) before each update. Keeps the filter
  /// tracking the daily congestion cycle instead of averaging it away —
  /// our documented stabilisation on top of the paper's Eq. 4.
  double process_noise_per_s = 0.03;
};

struct FusedSpeed {
  double mean_kmh = 0.0;
  double variance = 0.0;
  SimTime updated_at = 0.0;
  int observation_count = 0;  ///< raw estimates folded in so far
};

/// One segment's complete fusion state — the fused posterior plus every
/// still-open period batch — exported for checkpoints (core/checkpoint.h).
/// export_state() sorts entries by key and each period's pending values
/// ascending, so the export of a given fused state is byte-deterministic;
/// restoring sorted values is lossless because flush_until() sorts before
/// summing anyway.
struct FusionExportEntry {
  SegmentKey key;
  std::optional<FusedSpeed> fused;
  std::vector<std::pair<std::int64_t, std::vector<double>>> pending;
};

class SpeedFusion {
 public:
  explicit SpeedFusion(FusionConfig config = {});

  /// Feeds one raw estimate; batched until its period closes.
  ///
  /// Determinism: a period's estimates are summed in *sorted* order when
  /// the batch closes, so the fused result depends only on the multiset of
  /// estimates per period — any arrival order (e.g. from concurrent
  /// ingestion workers) yields bit-identical doubles.
  void add(const SpeedEstimate& estimate);

  /// Closes every batch whose period ends at or before `now`, applying the
  /// Eq. 4 update. Call before querying.
  void flush_until(SimTime now);

  /// Latest fused estimate for a segment, if any.
  std::optional<FusedSpeed> query(const SegmentKey& segment) const;

  /// All segments with a fused estimate.
  std::vector<std::pair<SegmentKey, FusedSpeed>> all() const;

  /// Visits every fused estimate in place, in exactly the order all()
  /// would list them — callers that only need one pass (epoch builds,
  /// exports) skip the intermediate vector copy. The callback must not
  /// re-enter this fusion.
  void visit_all(
      const std::function<void(const SegmentKey&, const FusedSpeed&)>& fn) const;

  /// Complete state for a checkpoint, sorted by key (byte-deterministic).
  std::vector<FusionExportEntry> export_state() const;

  /// Replaces all state with an export. The rebuilt map's *iteration* order
  /// follows the (sorted) entry order, which may differ from the original
  /// insertion order — per-segment arithmetic and the fused values are
  /// bit-identical; consumers comparing whole maps must canonicalise.
  void restore_state(const std::vector<FusionExportEntry>& entries);

  const FusionConfig& config() const { return config_; }

 private:
  struct State {
    std::optional<FusedSpeed> fused;
    // Open batches by period index; raw values kept (not a running sum) so
    // the close-time summation can be order-insensitive.
    std::map<std::int64_t, std::vector<double>> pending;
  };

  void apply(State& state, double mean_obs, SimTime at, int count);

  FusionConfig config_;
  std::unordered_map<SegmentKey, State, SegmentKeyHash> states_;
};

/// Sharded, internally locked fusion for concurrent ingestion.
///
/// Segments are partitioned by hash across `stripe_count` independent
/// SpeedFusion shards, each behind its own mutex: a segment's entire
/// history lives in exactly one shard, so the per-segment arithmetic — and
/// with it SpeedFusion's order-insensitive determinism — is untouched,
/// while writers on different stripes never contend.
class StripedSpeedFusion {
 public:
  explicit StripedSpeedFusion(FusionConfig config = {},
                              std::size_t stripe_count = 16);

  /// Thread-safe; locks the owning stripe only.
  void add(const SpeedEstimate& estimate);

  /// Folds a batch, taking each stripe lock at most once.
  void add_batch(const std::vector<SpeedEstimate>& estimates);

  /// Closes batches on every stripe (thread-safe).
  void flush_until(SimTime now);

  std::optional<FusedSpeed> query(const SegmentKey& segment) const;
  std::vector<std::pair<SegmentKey, FusedSpeed>> all() const;

  /// Visits every fused estimate stripe by stripe, in exactly the order
  /// all() would list them (thread-safe; each stripe lock is held for its
  /// own pass only). The callback must not touch this fusion.
  void visit_all(
      const std::function<void(const SegmentKey&, const FusedSpeed&)>& fn) const;

  /// Merged state of every stripe, sorted by key (byte-deterministic;
  /// thread-safe).
  std::vector<FusionExportEntry> export_state() const;

  /// Replaces all state; each entry is routed to its owning stripe, so the
  /// restored per-segment state is bit-identical at any stripe count.
  void restore_state(const std::vector<FusionExportEntry>& entries);

  const FusionConfig& config() const { return config_; }
  std::size_t stripe_count() const { return stripes_.size(); }

 private:
  struct Stripe {
    mutable std::mutex mutex;
    SpeedFusion fusion;
    explicit Stripe(const FusionConfig& config) : fusion(config) {}
  };

  std::size_t stripe_of(const SegmentKey& key) const {
    return SegmentKeyHash{}(key) % stripes_.size();
  }

  FusionConfig config_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
};

}  // namespace bussense
