#include "core/segment_catalog.h"

#include <algorithm>
#include <stdexcept>

namespace bussense {

SegmentCatalog::SegmentCatalog(const City& city) : city_(&city) {
  sequences_.reserve(city.routes().size());
  for (const BusRoute& route : city.routes()) {
    std::vector<StopId> seq;
    seq.reserve(route.stop_count());
    for (const RouteStop& rs : route.stops()) {
      seq.push_back(city.effective_stop(rs.stop));
    }
    sequences_.push_back(std::move(seq));
  }
  for (const BusRoute& route : city.routes()) {
    const auto& seq = sequences_[static_cast<std::size_t>(route.id())];
    for (std::size_t i = 0; i + 1 < seq.size(); ++i) {
      const SegmentKey key{seq[i], seq[i + 1]};
      if (adjacent_.contains(key)) continue;  // shared corridor: first wins
      adjacent_.emplace(key, make_span(route, route.stop_arc(static_cast<int>(i)),
                                       route.stop_arc(static_cast<int>(i) + 1)));
      adjacent_keys_.push_back(key);
    }
  }
}

SpanInfo SegmentCatalog::make_span(const BusRoute& route, double arc_from,
                                   double arc_to) const {
  SpanInfo info;
  info.route = route.id();
  info.arc_from = arc_from;
  info.arc_to = arc_to;
  info.links = route.link_lengths_between(arc_from, arc_to);
  info.length_m = arc_to - arc_from;
  double time_h = 0.0;
  for (const auto& [link, len_m] : info.links) {
    time_h += (len_m / 1000.0) / city_->network().link(link).free_speed_kmh;
  }
  info.free_speed_kmh =
      time_h > 0.0 ? (info.length_m / 1000.0) / time_h : 50.0;
  return info;
}

const SpanInfo* SegmentCatalog::adjacent(const SegmentKey& key) const {
  const auto it = adjacent_.find(key);
  return it == adjacent_.end() ? nullptr : &it->second;
}

std::optional<std::pair<RouteId, std::pair<int, int>>> SegmentCatalog::locate(
    const SegmentKey& key) const {
  for (std::size_t r = 0; r < sequences_.size(); ++r) {
    const auto& seq = sequences_[r];
    const auto from_it = std::find(seq.begin(), seq.end(), key.from);
    if (from_it == seq.end()) continue;
    const auto to_it = std::find(from_it + 1, seq.end(), key.to);
    if (to_it == seq.end()) continue;
    return std::make_pair(static_cast<RouteId>(r),
                          std::make_pair(static_cast<int>(from_it - seq.begin()),
                                         static_cast<int>(to_it - seq.begin())));
  }
  return std::nullopt;
}

std::optional<SpanInfo> SegmentCatalog::span(const SegmentKey& key) const {
  if (const SpanInfo* adj = adjacent(key)) return *adj;
  const auto loc = locate(key);
  if (!loc) return std::nullopt;
  const BusRoute& route = city_->route(loc->first);
  return make_span(route, route.stop_arc(loc->second.first),
                   route.stop_arc(loc->second.second));
}

std::vector<SegmentKey> SegmentCatalog::adjacent_chain(
    const SegmentKey& key) const {
  const auto loc = locate(key);
  if (!loc) return {};
  const auto& seq = sequences_[static_cast<std::size_t>(loc->first)];
  std::vector<SegmentKey> chain;
  for (int i = loc->second.first; i < loc->second.second; ++i) {
    chain.push_back(SegmentKey{seq[static_cast<std::size_t>(i)],
                               seq[static_cast<std::size_t>(i) + 1]});
  }
  return chain;
}

}  // namespace bussense
