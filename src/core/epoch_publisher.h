// Epoch-based (RCU-style) snapshot publisher: the write side of the
// serving tier (DESIGN.md §13).
//
// Ingest mutates fused state behind stripe locks; serving millions of
// queries cannot afford to touch those locks. The publisher periodically
// builds an immutable, query-optimized EpochSnapshot from the fused map —
// dense segment-indexed speeds, O(1) key lookup, precomputed level /
// coverage / mean-speed aggregates and a uniform spatial grid for region
// queries — and swaps it in behind one atomic pointer. Readers never
// block and never take a lock:
//
//   publish   build snapshot → current_.exchange(new) → retire old →
//             reclaim (free every retired epoch no reader still pins);
//   pin       read current_, advertise it in this thread's hazard slot,
//             re-validate current_ — the classic hazard-pointer handshake.
//             On success the epoch cannot be freed until the slot clears;
//             on failure (a publish won the race) retry with the newer
//             pointer. The reader never dereferences an unvalidated epoch;
//   unpin     clear the hazard slot (release). A retired epoch is freed
//             only after the publisher observes every slot not holding it,
//             so readers always see a fully constructed, never-torn,
//             never-recycled snapshot (property-tested under TSan; the
//             churn suite is ASan leak-verified).
//
// The reader registry is a fixed array of cache-line-padded atomic slots,
// handed out one per (thread, publisher) on first pin. Threads beyond
// max_readers fall back to a mutex-guarded overflow multiset — correctness
// unchanged, just not lock-free (counted in epochs.overflow_readers).
//
// Pins are re-entrant per thread (a nested pin returns the already-pinned
// epoch) and must be released on the thread that acquired them. All pins
// must be released before the publisher is destroyed; the destructor spins
// until the registry is empty.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/geo.h"
#include "core/config_common.h"
#include "core/fusion.h"
#include "core/segment_catalog.h"
#include "core/traffic_map.h"
#include "obs/metrics.h"

namespace bussense {

struct EpochPublisherConfig {
  /// Staleness cutoff handed to the snapshot build (strict `>` boundary,
  /// see TrafficMap::snapshot).
  double max_age_s = 3600.0;
  /// Lock-free reader slots; additional reader threads fall back to the
  /// mutex-guarded overflow path.
  std::size_t max_readers = 64;
  /// Spatial grid for region queries, over the city bounding box.
  int grid_cols = 32;
  int grid_rows = 16;
  using Observability = ObservabilityConfig;  // core/config_common.h
  Observability obs;

  /// Throws std::invalid_argument on nonsense (no readers, empty grid,
  /// non-positive staleness window).
  void validate() const;
};

/// Aggregate answer for a bounding-box region query. Covered/total lengths
/// count catalogued adjacent segments whose midpoint lies in the box.
struct RegionAggregate {
  std::uint64_t epoch_id = 0;
  SimTime epoch_time = 0.0;
  int segments_total = 0;  ///< catalogued segments in the box
  int segments_live = 0;   ///< of those, carrying a live estimate
  double mean_speed_kmh = 0.0;  ///< length-weighted over live segments
  double live_length_m = 0.0;
  double total_length_m = 0.0;
  double coverage_ratio = 0.0;  ///< live_length / total_length (0 if empty)
  std::array<int, 5> level_histogram{};  ///< live segments per SpeedLevel
};

/// One answer row of a k-nearest query: a live segment (copied out of the
/// epoch's map), its catalogued midpoint and its straight-line distance
/// from the query point.
struct NearestSegment {
  MapSegment segment;
  Point midpoint;
  double distance_m = 0.0;
};

/// Static geometry of every catalogued adjacent segment, built once per
/// publisher: midpoints, lengths, and a row-major uniform grid binning
/// segments by midpoint (CSR). Epochs reference it; only the thin
/// live-segment overlay is rebuilt per publish.
class SegmentGeometry {
 public:
  SegmentGeometry(const SegmentCatalog& catalog, int cols, int rows);

  struct Entry {
    SegmentKey key;
    Point midpoint;
    double length_m = 0.0;
  };

  std::size_t size() const { return entries_.size(); }
  const Entry& entry(std::uint32_t ordinal) const { return entries_[ordinal]; }
  std::optional<std::uint32_t> ordinal(const SegmentKey& key) const;
  const SegmentCatalog& catalog() const { return *catalog_; }

  int cols() const { return cols_; }
  int rows() const { return rows_; }
  /// Grid column/row containing a coordinate (clamped to the city box).
  int col_of(double x) const;
  int row_of(double y) const;
  /// Grid cell containing `p` (clamped to the city box).
  std::size_t cell_of(Point p) const;
  /// Ordinals binned into one cell, ascending.
  const std::uint32_t* cell_begin(std::size_t cell) const;
  const std::uint32_t* cell_end(std::size_t cell) const;
  const BoundingBox& region() const { return region_; }

 private:
  const SegmentCatalog* catalog_;
  std::vector<Entry> entries_;  ///< catalog.adjacent_keys() order
  std::unordered_map<SegmentKey, std::uint32_t, SegmentKeyHash> ordinal_;
  BoundingBox region_;
  int cols_;
  int rows_;
  std::vector<std::uint32_t> cell_start_;  ///< CSR offsets, row-major cells
  std::vector<std::uint32_t> cell_items_;  ///< ordinals, ascending per cell
};

/// One immutable published epoch: the TrafficMap it wraps (bit-identical
/// to TrafficMap::snapshot at the publish instant — property-tested), an
/// O(1) key index, the live-segment overlay on the publisher's geometry,
/// and whole-map aggregates precomputed at build time. Never mutated after
/// publish; safe to read from any number of threads without locks.
class EpochSnapshot {
 public:
  static constexpr std::uint32_t kNotLive = 0xffffffffu;

  std::uint64_t id() const { return id_; }
  SimTime time() const { return map_.time(); }
  double max_age_s() const { return max_age_s_; }

  const TrafficMap& map() const { return map_; }
  std::size_t live_segments() const { return map_.segments().size(); }

  /// O(1) lookup; nullptr when the segment has no live estimate.
  const MapSegment* segment(const SegmentKey& key) const;

  /// The segment's estimate as a FusedSpeed view (mean_kmh, updated_at and
  /// observation_count preserved; variance is not carried into epochs and
  /// reads 0). Enough for ArrivalPredictor — which reads only mean and
  /// age — to predict bit-identically to the source fusion.
  std::optional<FusedSpeed> fused(const SegmentKey& key) const;

  /// Region aggregate over the grid; deterministic per epoch (fixed
  /// cell-then-ordinal fold order).
  RegionAggregate region(const BoundingBox& box) const;

  /// The k live segments whose midpoints are nearest `p` (Euclidean,
  /// planar-frame metres — NOT lat/lon), ordered by (distance, key). Walks
  /// the publisher's grid in expanding Chebyshev rings from the cell
  /// containing `p` (clamped into the city box for points outside it) and
  /// stops once every unvisited ring is provably farther than the current
  /// k-th best — bit-identical to a brute-force scan (property-tested).
  /// Fewer than k rows when the epoch has fewer live segments.
  std::vector<NearestSegment> k_nearest(Point p, std::size_t k) const;

  // Whole-map aggregates, precomputed at publish.
  double coverage_ratio() const { return coverage_ratio_; }
  double mean_speed_kmh() const { return mean_speed_kmh_; }
  const std::map<SpeedLevel, int>& level_histogram() const {
    return level_histogram_;
  }

 private:
  friend class EpochPublisher;
  EpochSnapshot(TrafficMap map, const SegmentGeometry& geometry,
                double max_age_s);

  std::uint64_t id_ = 0;  ///< assigned by the publisher before the swap
  double max_age_s_ = 0.0;
  TrafficMap map_;
  const SegmentGeometry* geometry_;
  std::unordered_map<SegmentKey, std::uint32_t, SegmentKeyHash> index_;
  std::vector<std::uint32_t> live_of_ordinal_;  ///< geometry → map index
  std::map<SpeedLevel, int> level_histogram_;
  double coverage_ratio_ = 0.0;
  double mean_speed_kmh_ = 0.0;
};

class EpochPublisher {
 public:
  /// RAII pinned epoch. Falsy when nothing has been published yet. Must be
  /// released on the thread that acquired it; re-entrant pins on the same
  /// thread return the same epoch.
  class Pin {
   public:
    Pin() = default;
    Pin(Pin&& other) noexcept : pub_(other.pub_), snap_(other.snap_) {
      other.pub_ = nullptr;
      other.snap_ = nullptr;
    }
    Pin& operator=(Pin&& other) noexcept {
      if (this != &other) {
        release();
        pub_ = other.pub_;
        snap_ = other.snap_;
        other.pub_ = nullptr;
        other.snap_ = nullptr;
      }
      return *this;
    }
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;
    ~Pin() { release(); }

    explicit operator bool() const { return snap_ != nullptr; }
    const EpochSnapshot& operator*() const { return *snap_; }
    const EpochSnapshot* operator->() const { return snap_; }
    const EpochSnapshot* get() const { return snap_; }

   private:
    friend class EpochPublisher;
    Pin(const EpochPublisher* pub, const EpochSnapshot* snap)
        : pub_(pub), snap_(snap) {}
    void release();

    const EpochPublisher* pub_ = nullptr;
    const EpochSnapshot* snap_ = nullptr;
  };

  explicit EpochPublisher(const SegmentCatalog& catalog,
                          EpochPublisherConfig config = {});
  /// Stops the ticker, waits for every pin to be released, frees all
  /// epochs.
  ~EpochPublisher();

  EpochPublisher(const EpochPublisher&) = delete;
  EpochPublisher& operator=(const EpochPublisher&) = delete;

  /// Publishes a prebuilt map as the next epoch; returns its id (ids start
  /// at 1 and increase by 1 per publish). Publishes are serialized
  /// internally and may come from any thread.
  std::uint64_t publish_map(TrafficMap map);

  /// Builds the snapshot by visitation (no intermediate fused-map copy;
  /// TrafficMap::snapshot_visiting) and publishes it. The 2-arg forms use
  /// config().max_age_s.
  std::uint64_t publish_from(const SpeedFusion& fusion, SimTime now);
  std::uint64_t publish_from(const SpeedFusion& fusion, SimTime now,
                             double max_age_s);
  std::uint64_t publish_from(const StripedSpeedFusion& fusion, SimTime now);
  std::uint64_t publish_from(const StripedSpeedFusion& fusion, SimTime now,
                             double max_age_s);

  /// Periodic publishing: calls tick(*this) immediately, then every
  /// `period_s` (wall clock) until stop(). The tick callback typically
  /// calls some TrafficIngestor::publish_epoch.
  void start(std::function<void(EpochPublisher&)> tick, double period_s);
  /// Stops and joins the ticker; idempotent (also run by the destructor).
  void stop();

  /// Lock-free on the registered-reader path (a handful of atomics); the
  /// mutex-guarded overflow path engages only beyond max_readers threads.
  Pin pin() const;

  // Lifecycle accounting (exact under quiescence; monotone counters).
  std::uint64_t epochs_published() const {
    return published_.load(std::memory_order_relaxed);
  }
  std::uint64_t epochs_retired() const {  ///< retired *and freed*
    return retired_freed_.load(std::memory_order_relaxed);
  }
  /// Epochs currently allocated: the live one plus retired-but-still-
  /// pinned ones awaiting reclamation.
  std::size_t epochs_live() const;
  /// Occupied reader slots (registry scan + overflow; approximate while
  /// readers are in flight).
  std::size_t pinned_readers() const;

  /// Frees every retired epoch no reader pins; runs automatically after
  /// each publish, public so tests and quiescent owners can force it.
  /// Returns how many epochs were freed.
  std::size_t reclaim();

  const SegmentCatalog& catalog() const { return geometry_.catalog(); }
  const SegmentGeometry& geometry() const { return geometry_; }
  const EpochPublisherConfig& config() const { return config_; }

  /// Serving-tier instruments: epochs.published / epochs.retired counters,
  /// epochs.pinned gauge (sampled at reclaim), epochs.overflow_readers,
  /// publish.build_s histogram. Empty when observability is disabled.
  const MetricsRegistry& metrics() const { return *metrics_; }
  MetricsRegistry& metrics_registry() { return *metrics_; }

 private:
  struct alignas(64) Slot {
    std::atomic<const EpochSnapshot*> hazard{nullptr};
  };
  struct LocalPin {  // per (thread, publisher) pin state
    std::size_t slot = SIZE_MAX;
    bool overflow = false;
    int depth = 0;
    const EpochSnapshot* snap = nullptr;
  };

  LocalPin& local_pin() const;
  void unpin() const;
  std::uint64_t publish_impl(TrafficMap map, double start_s, double max_age_s);
  std::size_t reclaim_locked();
  std::size_t count_pinned_locked(
      std::vector<const EpochSnapshot*>* hazards) const;

  SegmentGeometry geometry_;
  EpochPublisherConfig config_;
  const std::uint64_t publisher_id_;  ///< key for thread-local pin lookup

  // Publish/retire/reclaim state, serialized by publish_mutex_.
  mutable std::mutex publish_mutex_;
  std::atomic<const EpochSnapshot*> current_{nullptr};
  std::vector<std::unique_ptr<EpochSnapshot>> owned_;
  std::vector<const EpochSnapshot*> retired_;
  std::uint64_t next_id_ = 1;

  // Reader registry.
  mutable std::vector<Slot> slots_;
  mutable std::atomic<std::size_t> next_slot_{0};
  mutable std::mutex overflow_mutex_;
  mutable std::multiset<const EpochSnapshot*> overflow_pins_;

  std::atomic<std::uint64_t> published_{0};
  std::atomic<std::uint64_t> retired_freed_{0};

  // Ticker.
  std::mutex ticker_mutex_;
  std::condition_variable ticker_cv_;
  bool ticker_stop_ = false;
  std::thread ticker_;

  std::unique_ptr<MetricsRegistry> metrics_;
  struct Instruments {
    Counter* published = nullptr;
    Counter* retired = nullptr;
    Counter* overflow_readers = nullptr;
    Gauge* pinned = nullptr;
    Gauge* live = nullptr;
    BucketHistogram* build_s = nullptr;
  };
  Instruments inst_;
};

}  // namespace bussense
