#include "core/workload_replay.h"

#include <cmath>
#include <stdexcept>

#include "core/epoch_publisher.h"

namespace bussense {

ReplayStats replay_workload(TrafficIngestor& ingestor,
                            const std::vector<TimedUpload>& workload,
                            const ReplayOptions& options) {
  if (options.publish_every > 0 && options.publisher == nullptr) {
    throw std::invalid_argument("replay_workload: publish_every without publisher");
  }
  ReplayStats stats;
  if (workload.empty()) return stats;

  stats.first_arrival = workload.front().arrival;
  // Next cadence boundary strictly after the first arrival: everything in
  // the period containing the first upload fuses together.
  double boundary = 0.0;
  if (options.advance_every_s > 0.0) {
    boundary = (std::floor(workload.front().arrival / options.advance_every_s) +
                1.0) *
               options.advance_every_s;
  }

  SimTime prev = workload.front().arrival;
  for (const TimedUpload& item : workload) {
    if (item.arrival < prev) {
      throw std::invalid_argument("replay_workload: workload not sorted by arrival");
    }
    prev = item.arrival;
    while (options.advance_every_s > 0.0 && item.arrival >= boundary) {
      ingestor.advance_time(boundary);
      ++stats.advances;
      if (options.publish_every > 0 &&
          stats.advances % options.publish_every == 0) {
        ingestor.publish_epoch(*options.publisher, boundary);
        ++stats.epochs_published;
      }
      boundary += options.advance_every_s;
    }
    const TripReport report = ingestor.process_trip(item.upload);
    ++stats.submitted;
    if (report.accepted()) {
      ++stats.accepted;
    } else {
      ++stats.rejected;
    }
  }
  stats.last_arrival = prev;
  if (options.final_advance) {
    ingestor.advance_time(prev + options.final_lag_s);
    ++stats.advances;
    if (options.publish_every > 0 && options.publisher != nullptr) {
      ingestor.publish_epoch(*options.publisher, prev + options.final_lag_s);
      ++stats.epochs_published;
    }
  }
  return stats;
}

}  // namespace bussense
