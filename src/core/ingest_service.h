// Asynchronous ingest front ends: the single-queue IngestService (bounded
// MPMC queue + worker pool + explicit backpressure) and the scale-out
// ShardedIngestService (participant-hash shards fed by lock-free SPSC
// rings, no coordinator — see the second half of this header).
//
// A deployment receives trip uploads from thousands of phones on whatever
// schedule the cellular network delivers them; the analysis pipeline runs
// at its own pace. IngestService decouples the two with a bounded MPMC
// queue: producers call process_trip() from any thread and get an
// immediate outcome (kQueued / kRejected), a fixed pool of workers drains
// the queue through ConcurrentTrafficServer, and a configurable
// backpressure policy decides what happens when producers outrun the
// workers:
//
//   * kBlock      — the producer waits for a slot (lossless, applies the
//                   backpressure to the caller);
//   * kReject     — the upload is refused with RejectReason::kQueueFull
//                   (the phone retries later; the refusal is counted);
//   * kDropOldest — the oldest queued upload is discarded to make room
//                   (freshest-data-wins, suited to live maps).
//
// Determinism: the queue only changes *when* a trip is analysed, never
// what the analysis computes, and the striped fusion backend is
// order-independent per period (see core/concurrent_server.h). The fused
// map after drain() + advance_time() is therefore bit-identical to
// feeding the same accepted uploads through the serial TrafficServer —
// property-tested at several worker counts, with metrics on and off.
//
// Shutdown is graceful: shutdown() (also run by the destructor) closes
// the queue to new uploads, lets the workers finish every queued trip,
// then flushes the per-thread fusion batches so no accepted estimate is
// lost.
//
// Admission control (ServerConfig::admission, core/admission.h) runs on
// the worker when the queued upload reaches the backend — not at enqueue
// time — so process_trip() still answers immediately. Admission verdicts
// land in the ingest.rejected.* counters; ingest.processed counts only
// uploads that ran the full pipeline.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/spsc_ring.h"
#include "common/thread_pool.h"
#include "core/concurrent_server.h"
#include "core/traffic_ingestor.h"

namespace bussense {

struct IngestServiceConfig {
  /// What process_trip() does when the queue is at capacity.
  enum class Backpressure : std::uint8_t { kBlock, kReject, kDropOldest };

  std::size_t queue_capacity = 1024;  ///< bounded; 0 is invalid
  /// Worker threads draining the queue. 0 = manual mode: nothing runs in
  /// the background and the owner steps the service with process_queued()
  /// — the deterministic harness the backpressure tests build on.
  std::size_t workers = 4;
  Backpressure backpressure = Backpressure::kBlock;
  ConcurrentServerConfig concurrency;

  /// Throws std::invalid_argument on nonsense: a zero-capacity queue, or
  /// kBlock with no workers (every full-queue enqueue would deadlock).
  void validate() const;
};

class IngestService final : public TrafficIngestor {
 public:
  IngestService(const City& city, StopDatabase database,
                ServerConfig config = {}, IngestServiceConfig service = {});
  ~IngestService() override;

  IngestService(const IngestService&) = delete;
  IngestService& operator=(const IngestService&) = delete;

  /// Enqueues the upload. Returns outcome kQueued (report data empty — the
  /// pipeline runs later; read metrics() for throughput) or kRejected with
  /// the reason. Safe from any thread, including after shutdown().
  TripReport process_trip(const TripUpload& trip) override;

  /// Blocks until every queued upload has been analysed and its estimates
  /// handed to the fusion layer. In manual mode (workers == 0) the calling
  /// thread does the work.
  void drain();

  /// drain(), then closes fusion periods up to `now`. This preserves the
  /// TrafficIngestor contract: every estimate accepted before this call is
  /// in the map it produces.
  void advance_time(SimTime now) override;

  /// Closes the queue (further uploads are rejected with kShutdown), lets
  /// the workers finish everything already queued, stops them, and flushes
  /// the per-thread fusion batches. Idempotent.
  void shutdown();

  /// Manual mode: analyse up to `max_items` queued uploads on the calling
  /// thread; returns how many were processed. Races with nothing when
  /// workers == 0 (its intended use).
  std::size_t process_queued(std::size_t max_items);

  TrafficMap snapshot(SimTime now, double max_age_s = 3600.0) const override;
  std::uint64_t publish_epoch(EpochPublisher& publisher, SimTime now,
                              double max_age_s = 3600.0) const override;
  const MetricsRegistry& metrics() const override { return backend_.metrics(); }
  const SegmentCatalog& catalog() const override { return backend_.catalog(); }
  std::uint64_t trips_processed() const override {
    return backend_.trips_processed();
  }

  /// Durable lifecycle, delegated to the concurrent backend (which owns
  /// the WAL/checkpoint manager). checkpoint() and close() drain the queue
  /// first so the recovery point covers every enqueued upload; with
  /// durability enabled, process_trip() outside open()..close() is
  /// rejected with kShutdown at enqueue time.
  RecoveryReport open() override;
  std::uint64_t checkpoint() override;
  void close() override;

  std::size_t queue_depth() const;
  bool closed() const;
  const ConcurrentTrafficServer& backend() const { return backend_; }

 private:
  struct Item {
    TripUpload trip;
    double enqueued_at = 0.0;  ///< monotonic_time_s() at enqueue
  };

  void worker_loop();
  void process_item(Item& item);
  Item pop_locked(std::unique_lock<std::mutex>& lock);

  ConcurrentTrafficServer backend_;
  IngestServiceConfig service_;
  bool durable_ = false;  ///< config.durability.enabled
  std::atomic<bool> lifecycle_open_{false};
  std::atomic<bool> lifecycle_closed_{false};

  mutable std::mutex mutex_;
  std::condition_variable not_empty_;  ///< queue gained an item / closed
  std::condition_variable not_full_;   ///< queue lost an item / closed
  std::condition_variable idle_;       ///< queue empty and nothing in flight
  std::deque<Item> queue_;
  std::size_t in_flight_ = 0;
  bool closed_ = false;

  // Worker machinery: the coordinator thread parks the pool's workers in
  // worker_loop() via one long parallel_for. Absent in manual mode.
  std::unique_ptr<ThreadPool> pool_;
  std::thread coordinator_;

  // Instruments live in the backend's registry so one snapshot covers the
  // whole pipeline; null when observability is disabled.
  struct Instruments {
    Counter* enqueued = nullptr;
    Counter* processed = nullptr;
    Counter* rejected_queue_full = nullptr;
    Counter* rejected_shutdown = nullptr;
    Counter* dropped_oldest = nullptr;
    Counter* worker_errors = nullptr;
    BucketHistogram* queue_latency_s = nullptr;  ///< enqueue → handed to fusion
    Gauge* queue_depth = nullptr;
  };
  Instruments inst_;
};

// ---------------------------------------------------------------------------
// Sharded scale-out ingest.
//
// IngestService above tops out early: one mutex-guarded MPMC deque, one
// coordinator thread and cross-thread fusion batching serialize every
// upload no matter how many workers drain the queue. ShardedIngestService
// removes every shared point on the hot path:
//
//   * uploads are partitioned by participant id with a stable hash
//     (mix64), so one participant's stream always lands on the same
//     shard;
//   * each shard is drained by its own consumer thread — there is no
//     coordinator and no shared queue. Producers reach a shard through a
//     per-(producer thread, shard) lock-free SPSC ring
//     (common/spsc_ring.h); a thread pushing and a consumer popping never
//     touch a lock or another thread's cache line;
//   * admission control (dedup LRU, clock-skew re-anchoring) runs inside
//     the shard on partition-local state: a participant's replays and
//     skew history live where its uploads are processed, so the checks
//     are race-free without a shared controller;
//   * each shard records into its own MetricsRegistry
//     (ingest.shard.* instruments); shard_metrics() merges the
//     registries in shard order, which is deterministic — the counters
//     depend only on the partitioning, never on scheduling.
//
// Determinism: analysis is pure, and the shards fold their estimates into
// the shared striped fusion, which batches per 5-minute period and sums
// each period's estimates in *sorted* order when advance_time() closes it
// (core/fusion.h). The fused map therefore depends only on the multiset
// of accepted uploads — shard count, arrival order, ring sizes and merge
// timing are all invisible, and the snapshot is bit-identical to feeding
// the same uploads through the serial TrafficServer (property-tested
// across shard and producer counts, admission and metrics on and off).
//
// Backpressure: a full ring either blocks the producer (kBlock — spin,
// then yield, then sleep) or rejects with RejectReason::kQueueFull
// (kReject). kDropOldest does not exist here: only the consumer may pop
// an SPSC ring, so the producer cannot shed the oldest entry.
struct ShardedIngestConfig {
  /// What process_trip() does when the producer's ring for the target
  /// shard is full.
  enum class Backpressure : std::uint8_t { kBlock, kReject };

  std::size_t shards = 4;             ///< independent partitions; > 0
  std::size_t ring_capacity = 1024;   ///< per (producer, shard) ring; > 0
  /// SPSC lanes per shard. The first `max_producer_lanes` producer
  /// threads each get a private ring per shard; later threads fall back
  /// to a small mutex-guarded overflow queue (counted, correctness
  /// unchanged).
  std::size_t max_producer_lanes = 16;
  Backpressure backpressure = Backpressure::kBlock;
  ConcurrentServerConfig concurrency;

  /// Throws std::invalid_argument on nonsense (zero shards, lanes or ring
  /// capacity).
  void validate() const;
};

class ShardedIngestService final : public TrafficIngestor {
 public:
  ShardedIngestService(const City& city, StopDatabase database,
                       ServerConfig config = {},
                       ShardedIngestConfig sharding = {});
  ~ShardedIngestService() override;

  ShardedIngestService(const ShardedIngestService&) = delete;
  ShardedIngestService& operator=(const ShardedIngestService&) = delete;

  /// Routes the upload to its participant's shard. Returns kQueued, or
  /// kRejected with kQueueFull (kReject policy) / kShutdown. Safe from any
  /// thread, including after shutdown().
  TripReport process_trip(const TripUpload& trip) override;

  /// Blocks until every pushed upload has been analysed and its estimates
  /// handed to the fusion layer. Exact once producers are quiescent (the
  /// same contract as IngestService::drain()).
  void drain();

  /// drain(), then advances the per-shard admission watermarks and closes
  /// fusion periods up to `now`.
  void advance_time(SimTime now) override;

  /// Closes the service (further uploads rejected with kShutdown), lets
  /// every shard finish its rings, joins the consumers and flushes the
  /// fusion batches. Idempotent; also run by the destructor.
  void shutdown();

  TrafficMap snapshot(SimTime now, double max_age_s = 3600.0) const override;
  std::uint64_t publish_epoch(EpochPublisher& publisher, SimTime now,
                              double max_age_s = 3600.0) const override;
  /// Pipeline-wide registry (analysis-stage instruments); the per-shard
  /// ingest.shard.* instruments live in the shard registries below.
  const MetricsRegistry& metrics() const override { return backend_.metrics(); }
  /// Deterministic merge of every shard's registry, in shard order. Shard
  /// instruments are counters only, so for a fixed accepted workload the
  /// merged snapshot (and its JSON) is byte-identical across runs.
  MetricsSnapshot shard_metrics() const;
  const MetricsRegistry& shard_registry(std::size_t shard) const {
    return *shards_[shard]->registry;
  }

  const SegmentCatalog& catalog() const override { return backend_.catalog(); }
  std::uint64_t trips_processed() const override {
    return backend_.trips_processed();
  }

  /// Durable lifecycle. This front end owns a WAL segment *per shard*
  /// (trips-<shard>.wal) plus one checkpoint stream; the backend's
  /// admission and durability are both stripped (shards admit, this class
  /// logs). open() replays shard by shard in seq order — fusion periods
  /// are never closed during replay, so the segment replay order cannot
  /// change the fused map. checkpoint()/close() drain first.
  RecoveryReport open() override;
  std::uint64_t checkpoint() override;
  void close() override;

  /// Stable partition of a participant id (mix64 hash mod shard count).
  std::size_t shard_of(std::int32_t participant_id) const;
  std::size_t shard_count() const { return shards_.size(); }
  /// Uploads currently queued across all rings and overflow queues; exact
  /// only while producers and consumers are quiescent.
  std::size_t queue_depth() const;
  bool closed() const { return closed_.load(std::memory_order_acquire); }
  const ConcurrentTrafficServer& backend() const { return backend_; }

 private:
  struct Shard {
    std::size_t index = 0;  ///< position in shards_ == WAL segment number
    /// Fixed lane array, one SPSC ring per producer slot, allocated
    /// eagerly so consumers never race a lane's publication.
    std::vector<std::unique_ptr<SpscRing<TripUpload>>> lanes;
    /// Spill path for producer threads beyond max_producer_lanes.
    mutable std::mutex overflow_mutex;
    std::deque<TripUpload> overflow;
    /// True while the consumer is popping/processing; drain() polls
    /// rings-then-busy so a popped-but-unfinished upload is never missed.
    std::atomic<bool> busy{false};
    /// Partition-local admission state (null when admission is disabled).
    std::unique_ptr<AdmissionController> admission;
    /// Shard-local instruments; merged by shard_metrics(). Always present
    /// (empty when observability is off).
    std::unique_ptr<MetricsRegistry> registry;
    struct Instruments {
      Counter* enqueued = nullptr;
      Counter* processed = nullptr;
      Counter* rejected_ring_full = nullptr;
      Counter* rejected_shutdown = nullptr;
      Counter* overflowed = nullptr;
      Counter* worker_errors = nullptr;
    };
    Instruments inst;
    std::thread consumer;
  };

  std::size_t producer_lane();  ///< this thread's lane slot for this service
  bool shard_pending(const Shard& shard) const;
  std::size_t drain_shard_once(Shard& shard);
  void process_one(Shard& shard, const TripUpload& trip);
  void shard_loop(Shard& shard);

  ConcurrentTrafficServer backend_;
  ShardedIngestConfig sharding_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Durability (null when disabled): one WAL segment per shard, appended
  // by that shard's consumer thread (single writer per segment).
  std::unique_ptr<DurabilityManager> durability_;
  std::atomic<bool> lifecycle_open_{false};
  std::atomic<bool> lifecycle_closed_{false};

  std::atomic<bool> closed_{false};
  /// Producers currently inside process_trip(). Consumers only exit when
  /// closed_ is set, this is zero and their rings are empty — so an upload
  /// that won the closed_ check is never stranded by shutdown.
  std::atomic<std::size_t> pushing_{0};
  std::atomic<std::size_t> next_producer_slot_{0};
  const std::uint64_t service_id_;  ///< key for thread-local lane lookup
};

}  // namespace bussense
