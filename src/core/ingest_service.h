// Asynchronous ingest front end: bounded queue + worker pool + explicit
// backpressure, over the thread-safe concurrent server.
//
// A deployment receives trip uploads from thousands of phones on whatever
// schedule the cellular network delivers them; the analysis pipeline runs
// at its own pace. IngestService decouples the two with a bounded MPMC
// queue: producers call process_trip() from any thread and get an
// immediate outcome (kQueued / kRejected), a fixed pool of workers drains
// the queue through ConcurrentTrafficServer, and a configurable
// backpressure policy decides what happens when producers outrun the
// workers:
//
//   * kBlock      — the producer waits for a slot (lossless, applies the
//                   backpressure to the caller);
//   * kReject     — the upload is refused with RejectReason::kQueueFull
//                   (the phone retries later; the refusal is counted);
//   * kDropOldest — the oldest queued upload is discarded to make room
//                   (freshest-data-wins, suited to live maps).
//
// Determinism: the queue only changes *when* a trip is analysed, never
// what the analysis computes, and the striped fusion backend is
// order-independent per period (see core/concurrent_server.h). The fused
// map after drain() + advance_time() is therefore bit-identical to
// feeding the same accepted uploads through the serial TrafficServer —
// property-tested at several worker counts, with metrics on and off.
//
// Shutdown is graceful: shutdown() (also run by the destructor) closes
// the queue to new uploads, lets the workers finish every queued trip,
// then flushes the per-thread fusion batches so no accepted estimate is
// lost.
//
// Admission control (ServerConfig::admission, core/admission.h) runs on
// the worker when the queued upload reaches the backend — not at enqueue
// time — so process_trip() still answers immediately. Admission verdicts
// land in the ingest.rejected.* counters; ingest.processed counts only
// uploads that ran the full pipeline.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

#include "common/thread_pool.h"
#include "core/concurrent_server.h"
#include "core/traffic_ingestor.h"

namespace bussense {

struct IngestServiceConfig {
  /// What process_trip() does when the queue is at capacity.
  enum class Backpressure : std::uint8_t { kBlock, kReject, kDropOldest };

  std::size_t queue_capacity = 1024;  ///< bounded; 0 is invalid
  /// Worker threads draining the queue. 0 = manual mode: nothing runs in
  /// the background and the owner steps the service with process_queued()
  /// — the deterministic harness the backpressure tests build on.
  std::size_t workers = 4;
  Backpressure backpressure = Backpressure::kBlock;
  ConcurrentServerConfig concurrency;

  /// Throws std::invalid_argument on nonsense: a zero-capacity queue, or
  /// kBlock with no workers (every full-queue enqueue would deadlock).
  void validate() const;
};

class IngestService final : public TrafficIngestor {
 public:
  IngestService(const City& city, StopDatabase database,
                ServerConfig config = {}, IngestServiceConfig service = {});
  ~IngestService() override;

  IngestService(const IngestService&) = delete;
  IngestService& operator=(const IngestService&) = delete;

  /// Enqueues the upload. Returns outcome kQueued (report data empty — the
  /// pipeline runs later; read metrics() for throughput) or kRejected with
  /// the reason. Safe from any thread, including after shutdown().
  TripReport process_trip(const TripUpload& trip) override;

  /// Blocks until every queued upload has been analysed and its estimates
  /// handed to the fusion layer. In manual mode (workers == 0) the calling
  /// thread does the work.
  void drain();

  /// drain(), then closes fusion periods up to `now`. This preserves the
  /// TrafficIngestor contract: every estimate accepted before this call is
  /// in the map it produces.
  void advance_time(SimTime now) override;

  /// Closes the queue (further uploads are rejected with kShutdown), lets
  /// the workers finish everything already queued, stops them, and flushes
  /// the per-thread fusion batches. Idempotent.
  void shutdown();

  /// Manual mode: analyse up to `max_items` queued uploads on the calling
  /// thread; returns how many were processed. Races with nothing when
  /// workers == 0 (its intended use).
  std::size_t process_queued(std::size_t max_items);

  TrafficMap snapshot(SimTime now, double max_age_s = 3600.0) const override;
  const MetricsRegistry& metrics() const override { return backend_.metrics(); }
  const SegmentCatalog& catalog() const override { return backend_.catalog(); }
  std::uint64_t trips_processed() const override {
    return backend_.trips_processed();
  }

  std::size_t queue_depth() const;
  bool closed() const;
  const ConcurrentTrafficServer& backend() const { return backend_; }

 private:
  struct Item {
    TripUpload trip;
    double enqueued_at = 0.0;  ///< monotonic_time_s() at enqueue
  };

  void worker_loop();
  void process_item(Item& item);
  Item pop_locked(std::unique_lock<std::mutex>& lock);

  ConcurrentTrafficServer backend_;
  IngestServiceConfig service_;

  mutable std::mutex mutex_;
  std::condition_variable not_empty_;  ///< queue gained an item / closed
  std::condition_variable not_full_;   ///< queue lost an item / closed
  std::condition_variable idle_;       ///< queue empty and nothing in flight
  std::deque<Item> queue_;
  std::size_t in_flight_ = 0;
  bool closed_ = false;

  // Worker machinery: the coordinator thread parks the pool's workers in
  // worker_loop() via one long parallel_for. Absent in manual mode.
  std::unique_ptr<ThreadPool> pool_;
  std::thread coordinator_;

  // Instruments live in the backend's registry so one snapshot covers the
  // whole pipeline; null when observability is disabled.
  struct Instruments {
    Counter* enqueued = nullptr;
    Counter* processed = nullptr;
    Counter* rejected_queue_full = nullptr;
    Counter* rejected_shutdown = nullptr;
    Counter* dropped_oldest = nullptr;
    Counter* worker_errors = nullptr;
    BucketHistogram* queue_latency_s = nullptr;  ///< enqueue → handed to fusion
    Gauge* queue_depth = nullptr;
  };
  Instruments inst_;
};

}  // namespace bussense
