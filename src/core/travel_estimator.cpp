#include "core/travel_estimator.h"

#include <algorithm>

namespace bussense {

TravelEstimator::TravelEstimator(const SegmentCatalog& catalog,
                                 AttModelConfig config)
    : catalog_(&catalog), config_(config) {}

double TravelEstimator::free_bus_time_s(double length_m,
                                        double free_speed_kmh) const {
  const double free_bus_kmh = config_.bus_free_factor * free_speed_kmh;
  return (length_m / 1000.0) / free_bus_kmh * 3600.0 + config_.stop_overhead_s;
}

double TravelEstimator::att_seconds(double btt_s, double length_m,
                                    double free_speed_kmh) const {
  const double a = (length_m / 1000.0) / free_speed_kmh * 3600.0;
  const double excess =
      std::max(0.0, btt_s - free_bus_time_s(length_m, free_speed_kmh));
  return a + config_.b * excess;
}

std::vector<SpeedEstimate> TravelEstimator::estimate(const MappedTrip& trip) const {
  std::vector<SpeedEstimate> out;
  for (std::size_t k = 0; k + 1 < trip.stops.size(); ++k) {
    const MappedCluster& from = trip.stops[k];
    const MappedCluster& to = trip.stops[k + 1];
    if (from.stop == to.stop) continue;  // split cluster at one stop
    const SimTime depart = from.cluster.departure_time();
    const SimTime arrive = to.cluster.arrival_time();
    const double btt = arrive - depart;
    if (btt <= 0.0) continue;
    const auto span = catalog_->span(SegmentKey{from.stop, to.stop});
    if (!span) continue;  // residual mapping error: no route serves the pair
    const double att = att_seconds(btt, span->length_m, span->free_speed_kmh);
    if (att <= 0.0) continue;
    const double speed_kmh = (span->length_m / 1000.0) / (att / 3600.0);
    SpeedEstimate base;
    base.route = span->route;
    base.time = 0.5 * (depart + arrive);
    base.att_speed_kmh = speed_kmh;
    base.btt_s = btt;
    base.span_length_m = span->length_m;
    for (const SegmentKey& adj :
         catalog_->adjacent_chain(SegmentKey{from.stop, to.stop})) {
      SpeedEstimate e = base;
      e.segment = adj;
      out.push_back(std::move(e));
    }
  }
  return out;
}

}  // namespace bussense
