// Assembled city traffic map (paper Section III-A, Figure 9).
//
// A snapshot of the fused per-segment speeds at an instant, quantised into
// the paper's five display levels, with coverage statistics over the road
// network and an ASCII rendering for the examples.
#pragma once

#include <array>
#include <map>
#include <string>
#include <vector>

#include "citynet/city.h"
#include "core/fusion.h"
#include "core/segment_catalog.h"

namespace bussense {

/// The five display levels of Figure 9 (km/h boundaries 20/30/40/50).
enum class SpeedLevel { kVerySlow, kSlow, kMedium, kFast, kVeryFast };

SpeedLevel classify_speed(double kmh);
std::string to_string(SpeedLevel level);

struct MapSegment {
  SegmentKey key;
  double speed_kmh = 0.0;
  SpeedLevel level = SpeedLevel::kMedium;
  SimTime updated_at = 0.0;
  int observation_count = 0;
};

class TrafficMap {
 public:
  /// Builds a snapshot from fused estimates no older than `max_age_s`.
  ///
  /// Staleness boundary (pinned by tests): the cutoff is strict `>` on the
  /// age — an estimate exactly `max_age_s` old is still included; one
  /// epsilon older is not.
  static TrafficMap snapshot(const SpeedFusion& fusion,
                             const SegmentCatalog& catalog, SimTime now,
                             double max_age_s = 3600.0);
  static TrafficMap snapshot(const StripedSpeedFusion& fusion,
                             const SegmentCatalog& catalog, SimTime now,
                             double max_age_s = 3600.0);

  /// Visitation-based build: identical to snapshot() — same per-item path,
  /// same traversal order, bit-identical result — but the fused map is
  /// consumed in place instead of being copied into an intermediate
  /// vector. This is the epoch-publish entry point (DESIGN.md §13);
  /// FusionT needs visit_all(callback) (both fusion classes provide it).
  template <class FusionT>
  static TrafficMap snapshot_visiting(const FusionT& fusion,
                                      const SegmentCatalog& catalog,
                                      SimTime now, double max_age_s = 3600.0) {
    TrafficMap map;
    map.time_ = now;
    fusion.visit_all([&](const SegmentKey& key, const FusedSpeed& fused) {
      map.add_fused(key, fused, catalog, now, max_age_s);
    });
    return map;
  }

  const std::vector<MapSegment>& segments() const { return segments_; }
  SimTime time() const { return time_; }

  /// Count of segments per display level.
  std::map<SpeedLevel, int> level_histogram() const;

  /// Fraction of total road length carrying a live estimate.
  double coverage_ratio(const SegmentCatalog& catalog) const;

  /// Length-weighted mean estimated speed.
  double mean_speed_kmh() const;

  /// Character-grid rendering: digits 1 (very slow) … 5 (very fast) on
  /// estimated segments, '.' on covered-but-stale roads, ' ' elsewhere.
  std::string render_ascii(const SegmentCatalog& catalog, int cols,
                           int rows) const;

 private:
  static TrafficMap from_fused(
      const std::vector<std::pair<SegmentKey, FusedSpeed>>& fused,
      const SegmentCatalog& catalog, SimTime now, double max_age_s);

  /// The one per-item path every build goes through (copying and visiting
  /// overloads alike): strict-`>` staleness cutoff, then append.
  void add_fused(const SegmentKey& key, const FusedSpeed& fused,
                 const SegmentCatalog& catalog, SimTime now, double max_age_s);

  SimTime time_ = 0.0;
  std::vector<MapSegment> segments_;
  std::vector<double> segment_lengths_;
};

}  // namespace bussense
