// Travel time extraction and the bus→automobile traffic model
// (paper Section III-D, Eq. 3).
//
// From a mapped trip the estimator extracts, for each pair of consecutive
// identified stops i, j, the bus travel time BTT = t_a(j) − t_d(i) (arrival
// at j minus departure from i — dwell at the endpoints excluded). Skipped
// stops simply do not appear in the trip, so the pair automatically covers
// the combined segment, exactly as the paper prescribes.
//
// The BTT→ATT model: ATT = a + b·BTT_excess with a = length / free-speed
// (free automobile travel time) and BTT_excess = max(0, BTT − BTT_free),
// BTT_free being the free-flow bus running time (timetable calibration:
// length over the bus free-speed factor plus a fixed per-stop overhead).
// Interpreting b as multiplying the congestion component of the bus
// running time — "the effect of traffic congestion (as measured by the
// running time of buses) on ATT" — keeps ATT → a at free flow while
// preserving the paper's linear form; EXPERIMENTS.md discusses the
// reconstruction, and the Eq. 3 regression bench recovers b in the paper's
// [0.3, 0.8] band.
#pragma once

#include <vector>

#include "common/sim_time.h"
#include "core/segment_catalog.h"
#include "core/trip_mapper.h"

namespace bussense {

struct AttModelConfig {
  double b = 0.5;                  ///< paper's chosen congestion coefficient
  double bus_free_factor = 0.88;   ///< bus/car speed ratio at free flow
  double stop_overhead_s = 10.0;   ///< accel/brake overhead per served stop
};

/// One automobile-speed observation for an adjacent inter-stop segment.
struct SpeedEstimate {
  SegmentKey segment;      ///< adjacent effective stop pair
  RouteId route = kInvalidRoute;
  SimTime time = 0.0;      ///< midpoint of the observation interval
  double att_speed_kmh = 0.0;
  double btt_s = 0.0;      ///< bus travel time of the originating span
  double span_length_m = 0.0;
};

class TravelEstimator {
 public:
  TravelEstimator(const SegmentCatalog& catalog, AttModelConfig config = {});

  /// Free-flow bus running time over a span (Eq. 3 calibration term).
  double free_bus_time_s(double length_m, double free_speed_kmh) const;

  /// Eq. 3: estimated automobile travel time for the span.
  double att_seconds(double btt_s, double length_m, double free_speed_kmh) const;

  /// Extracts one estimate per adjacent segment covered by the trip. A span
  /// over skipped stops contributes its speed to each covered segment.
  std::vector<SpeedEstimate> estimate(const MappedTrip& trip) const;

  const AttModelConfig& config() const { return config_; }

 private:
  const SegmentCatalog* catalog_;
  AttModelConfig config_;
};

}  // namespace bussense
