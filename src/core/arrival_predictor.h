// Bus arrival prediction on top of the live traffic map.
//
// The authors' companion system (Zhou, Zheng, Li — MobiSys'12 [27])
// predicts bus arrival times from participatory sensing; here the same
// capability falls out of the traffic server: once a trip's last cluster
// fixes the bus at a stop, downstream arrival times follow by inverting the
// Eq. 3 traffic model per segment — fused automobile speed → expected bus
// running time — plus the expected dwell at each served stop.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "core/fusion.h"
#include "core/segment_catalog.h"
#include "core/travel_estimator.h"

namespace bussense {

struct ArrivalPredictorConfig {
  AttModelConfig att;
  double expected_dwell_s = 14.0;   ///< mean dwell at a served stop
  double serve_probability = 0.8;   ///< chance a stop is actually served
  double max_estimate_age_s = 1800.0;  ///< older fused speeds are ignored
};

struct ArrivalPrediction {
  int stop_index = -1;
  StopId stop = kInvalidStop;  ///< effective stop id
  SimTime eta = 0.0;           ///< predicted arrival time
  double travel_s = 0.0;       ///< predicted seconds from departure
  bool from_live_traffic = false;  ///< false = free-flow fallback only
};

class ArrivalPredictor {
 public:
  ArrivalPredictor(const SegmentCatalog& catalog,
                   ArrivalPredictorConfig config = {});

  /// Expected bus running time over one adjacent segment given the fused
  /// automobile speed (inverts Eq. 3), excluding dwell.
  double segment_bus_time_s(const SpanInfo& info, double att_speed_kmh) const;

  /// Per-segment speed source: the latest fused estimate for a key, or
  /// nullopt. Only mean_kmh and updated_at are read, so any snapshot that
  /// preserves those two fields (e.g. a serving epoch, DESIGN.md §13)
  /// predicts bit-identically to the live fusion it was built from.
  using SpeedLookup =
      std::function<std::optional<FusedSpeed>(const SegmentKey&)>;

  /// Predicts arrivals at every stop after `from_index`, for a bus that
  /// departed that stop at `departure`. Uses `fusion` speeds no older than
  /// max_estimate_age_s relative to `now`; free flow otherwise.
  std::vector<ArrivalPrediction> predict(const BusRoute& route, int from_index,
                                         SimTime departure,
                                         const SpeedFusion& fusion,
                                         SimTime now) const;

  /// Same prediction against an arbitrary speed source (the fusion overload
  /// delegates here, so both paths are the same arithmetic).
  std::vector<ArrivalPrediction> predict(const BusRoute& route, int from_index,
                                         SimTime departure,
                                         const SpeedLookup& speeds,
                                         SimTime now) const;

  const ArrivalPredictorConfig& config() const { return config_; }

 private:
  const SegmentCatalog* catalog_;
  ArrivalPredictorConfig config_;
};

}  // namespace bussense
