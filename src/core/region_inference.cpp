#include "core/region_inference.h"

#include <algorithm>
#include <cmath>

namespace bussense {

RegionInference::RegionInference(const City& city, const SegmentCatalog& catalog,
                                 RegionInferenceConfig config)
    : city_(&city), catalog_(&catalog), config_(config) {
  link_midpoints_.reserve(city.network().size());
  for (const RoadLink& link : city.network().links()) {
    link_midpoints_.push_back(link.path.point_at(link.path.length() / 2.0));
  }
}

std::vector<LinkTrafficEstimate> RegionInference::infer(
    const TrafficMap& map) const {
  // Evidence: per observed map segment, a congestion level anchored at the
  // segment's midpoint with the segment's dominant road class.
  struct Evidence {
    Point position;
    double congestion;
    RoadClass road_class;
    double strength;  ///< length-proportional
  };
  std::vector<Evidence> evidence;
  std::vector<char> directly_observed(city_->network().size(), 0);
  std::vector<double> observed_speed(city_->network().size(), 0.0);
  std::vector<double> observed_len(city_->network().size(), 0.0);
  for (const MapSegment& seg : map.segments()) {
    const SpanInfo* info = catalog_->adjacent(seg.key);
    if (!info) continue;
    const double congestion =
        std::clamp(1.0 - seg.speed_kmh / info->free_speed_kmh, 0.0, 0.95);
    const BusRoute& route = city_->route(info->route);
    const Point mid =
        route.path().point_at(0.5 * (info->arc_from + info->arc_to));
    // Dominant link class of the span.
    RoadClass cls = RoadClass::kArterial;
    double best_len = -1.0;
    for (const auto& [link, len] : info->links) {
      if (len > best_len) {
        best_len = len;
        cls = city_->network().link(link).road_class;
      }
      const auto idx = static_cast<std::size_t>(link);
      directly_observed[idx] = 1;
      observed_speed[idx] += seg.speed_kmh * len;
      observed_len[idx] += len;
    }
    evidence.push_back(Evidence{mid, congestion, cls, info->length_m});
  }

  std::vector<LinkTrafficEstimate> out;
  out.reserve(city_->network().size());
  const double h2 =
      2.0 * config_.kernel_bandwidth_m * config_.kernel_bandwidth_m;
  for (const RoadLink& link : city_->network().links()) {
    const auto idx = static_cast<std::size_t>(link.id);
    LinkTrafficEstimate est;
    est.link = link.id;
    if (directly_observed[idx]) {
      est.observed = true;
      est.speed_kmh = observed_speed[idx] / observed_len[idx];
      est.congestion =
          std::clamp(1.0 - est.speed_kmh / link.free_speed_kmh, 0.0, 0.95);
      est.confidence = 1.0;
      out.push_back(est);
      continue;
    }
    double weight = 0.0;
    double congestion = 0.0;
    for (const Evidence& e : evidence) {
      const double d = distance(link_midpoints_[idx], e.position);
      double w = e.strength * std::exp(-d * d / h2);
      if (e.road_class != link.road_class) w *= config_.cross_class_affinity;
      weight += w;
      congestion += w * e.congestion;
    }
    // Weight is in metres of evidence; normalise by one segment's worth.
    const double mass = weight / 400.0;
    if (mass < config_.min_total_weight) continue;  // abstain
    est.congestion = congestion / weight;
    est.speed_kmh = link.free_speed_kmh * (1.0 - est.congestion);
    est.confidence = mass / (mass + 1.0);
    out.push_back(est);
  }
  return out;
}

}  // namespace bussense
