#include "core/matching_simd.h"

#include <algorithm>
#include <vector>

#if defined(BUSSENSE_SIMD_AVX2)
#include <immintrin.h>
#endif
#if defined(BUSSENSE_SIMD_NEON)
#include <arm_neon.h>
#endif

namespace bussense::simd {

namespace {

// Two rolling DP rows of `width` int16 lanes per column, reused across
// calls; thread_local because ingestion workers batch-score concurrently.
thread_local std::vector<std::int16_t> t_rows;

std::int16_t* rows_scratch(std::size_t m, std::size_t width) {
  const std::size_t need = 2 * (m + 1) * width;
  if (t_rows.size() < need) t_rows.resize(need);
  return t_rows.data();
}

// Portable scalar batch: the reference semantics every vector kernel must
// reproduce bit-for-bit. Plain int arithmetic over `width` independent
// lanes — with fixed_point_usable() holding, every value fits int16, so the
// narrowing stores are exact.
void score_batch_scalar(const std::int16_t* upload, std::size_t n,
                        const std::int16_t* db_t, std::size_t m,
                        const FixedScores& fs, std::int16_t* scores10,
                        std::size_t width) {
  std::int16_t* prev = rows_scratch(m, width);
  std::int16_t* cur = prev + (m + 1) * width;
  std::fill(prev, prev + (m + 1) * width, std::int16_t{0});
  std::fill(cur, cur + width, std::int16_t{0});  // column 0 stays 0
  std::fill(scores10, scores10 + width, std::int16_t{0});
  for (std::size_t i = 1; i <= n; ++i) {
    const std::int16_t up_rank = upload[i - 1];
    for (std::size_t j = 1; j <= m; ++j) {
      const std::int16_t* db_row = db_t + (j - 1) * width;
      for (std::size_t lane = 0; lane < width; ++lane) {
        const bool eq = up_rank == db_row[lane];
        const int diag =
            prev[(j - 1) * width + lane] + (eq ? fs.match : -fs.mismatch);
        const int up = prev[j * width + lane] - fs.gap;
        const int left = cur[(j - 1) * width + lane] - fs.gap;
        const int v = std::max({0, diag, up, left});
        cur[j * width + lane] = static_cast<std::int16_t>(v);
        if (v > scores10[lane]) scores10[lane] = static_cast<std::int16_t>(v);
      }
    }
    std::swap(prev, cur);
  }
}

#if defined(BUSSENSE_SIMD_AVX2)

// 16 candidates per call, one per int16 lane of a 256-bit register. Compiled
// with the `target` attribute so the TU needs no global -mavx2 (the scalar
// paths stay runnable on any x86-64); entered only after active_kernel()'s
// cpuid check.
__attribute__((target("avx2"))) void score_batch_avx2(
    const std::int16_t* upload, std::size_t n, const std::int16_t* db_t,
    std::size_t m, const FixedScores& fs, std::int16_t* scores10) {
  constexpr std::size_t kW = 16;
  std::int16_t* prev = rows_scratch(m, kW);
  std::int16_t* cur = prev + (m + 1) * kW;
  std::fill(prev, prev + (m + 1) * kW, std::int16_t{0});
  std::fill(cur, cur + kW, std::int16_t{0});
  const __m256i vzero = _mm256_setzero_si256();
  const __m256i vmatch = _mm256_set1_epi16(fs.match);
  const __m256i vmismatch =
      _mm256_set1_epi16(static_cast<std::int16_t>(-fs.mismatch));
  const __m256i vgap = _mm256_set1_epi16(fs.gap);
  __m256i vbest = vzero;
  for (std::size_t i = 1; i <= n; ++i) {
    const __m256i vup = _mm256_set1_epi16(upload[i - 1]);
    __m256i vleft = vzero;  // cur[j-1]; column 0 is all zeros
    for (std::size_t j = 1; j <= m; ++j) {
      const __m256i vdb = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(db_t + (j - 1) * kW));
      const __m256i veq = _mm256_cmpeq_epi16(vup, vdb);
      // ±substitution selected per lane: cmpeq lanes are all-ones/all-zero,
      // so the byte-wise blend picks whole int16 values.
      const __m256i vsubst = _mm256_blendv_epi8(vmismatch, vmatch, veq);
      const __m256i vdiag = _mm256_add_epi16(
          _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(prev + (j - 1) * kW)),
          vsubst);
      const __m256i vupward = _mm256_sub_epi16(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(prev + j * kW)),
          vgap);
      const __m256i vleftward = _mm256_sub_epi16(vleft, vgap);
      __m256i v = _mm256_max_epi16(vdiag, vupward);
      v = _mm256_max_epi16(v, vleftward);
      v = _mm256_max_epi16(v, vzero);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(cur + j * kW), v);
      vbest = _mm256_max_epi16(vbest, v);
      vleft = v;
    }
    std::swap(prev, cur);
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(scores10), vbest);
}

bool host_has_avx2() {
  static const bool has = __builtin_cpu_supports("avx2");
  return has;
}

#endif  // BUSSENSE_SIMD_AVX2

#if defined(BUSSENSE_SIMD_NEON)

// 8 candidates per call, one per int16 lane. NEON is baseline on AArch64,
// so no runtime probe is needed — compiled-in support is enough.
void score_batch_neon(const std::int16_t* upload, std::size_t n,
                      const std::int16_t* db_t, std::size_t m,
                      const FixedScores& fs, std::int16_t* scores10) {
  constexpr std::size_t kW = 8;
  std::int16_t* prev = rows_scratch(m, kW);
  std::int16_t* cur = prev + (m + 1) * kW;
  std::fill(prev, prev + (m + 1) * kW, std::int16_t{0});
  std::fill(cur, cur + kW, std::int16_t{0});
  const int16x8_t vzero = vdupq_n_s16(0);
  const int16x8_t vmatch = vdupq_n_s16(fs.match);
  const int16x8_t vmismatch = vdupq_n_s16(static_cast<std::int16_t>(-fs.mismatch));
  const int16x8_t vgap = vdupq_n_s16(fs.gap);
  int16x8_t vbest = vzero;
  for (std::size_t i = 1; i <= n; ++i) {
    const int16x8_t vup = vdupq_n_s16(upload[i - 1]);
    int16x8_t vleft = vzero;
    for (std::size_t j = 1; j <= m; ++j) {
      const int16x8_t vdb = vld1q_s16(db_t + (j - 1) * kW);
      const uint16x8_t veq = vceqq_s16(vup, vdb);
      const int16x8_t vsubst = vbslq_s16(veq, vmatch, vmismatch);
      const int16x8_t vdiag = vaddq_s16(vld1q_s16(prev + (j - 1) * kW), vsubst);
      const int16x8_t vupward = vsubq_s16(vld1q_s16(prev + j * kW), vgap);
      const int16x8_t vleftward = vsubq_s16(vleft, vgap);
      int16x8_t v = vmaxq_s16(vdiag, vupward);
      v = vmaxq_s16(v, vleftward);
      v = vmaxq_s16(v, vzero);
      vst1q_s16(cur + j * kW, v);
      vbest = vmaxq_s16(vbest, v);
      vleft = v;
    }
    std::swap(prev, cur);
  }
  vst1q_s16(scores10, vbest);
}

#endif  // BUSSENSE_SIMD_NEON

}  // namespace

Kernel active_kernel() {
#if defined(BUSSENSE_SIMD_AVX2)
  if (host_has_avx2()) return Kernel::kAvx2;
#endif
#if defined(BUSSENSE_SIMD_NEON)
  return Kernel::kNeon;
#else
  return Kernel::kScalar;
#endif
}

bool kernel_available(Kernel kernel) {
  switch (kernel) {
    case Kernel::kAuto:
    case Kernel::kScalar:
      return true;
    case Kernel::kAvx2:
#if defined(BUSSENSE_SIMD_AVX2)
      return host_has_avx2();
#else
      return false;
#endif
    case Kernel::kNeon:
#if defined(BUSSENSE_SIMD_NEON)
      return true;
#else
      return false;
#endif
  }
  return false;
}

const char* kernel_name(Kernel kernel) {
  switch (kernel) {
    case Kernel::kAuto:
      return kernel_name(active_kernel());
    case Kernel::kScalar:
      return "scalar-batch";
    case Kernel::kAvx2:
      return "avx2";
    case Kernel::kNeon:
      return "neon";
  }
  return "unknown";
}

std::size_t batch_width(Kernel kernel) {
  if (kernel == Kernel::kAuto) kernel = active_kernel();
  return kernel == Kernel::kAvx2 ? 16 : 8;
}

void score_batch(const std::int16_t* upload, std::size_t n,
                 const std::int16_t* db_t, std::size_t m,
                 const FixedScores& fs, std::int16_t* scores10,
                 Kernel kernel) {
  if (kernel == Kernel::kAuto) kernel = active_kernel();
  switch (kernel) {
#if defined(BUSSENSE_SIMD_AVX2)
    case Kernel::kAvx2:
      score_batch_avx2(upload, n, db_t, m, fs, scores10);
      return;
#endif
#if defined(BUSSENSE_SIMD_NEON)
    case Kernel::kNeon:
      score_batch_neon(upload, n, db_t, m, fs, scores10);
      return;
#endif
    default:
      score_batch_scalar(upload, n, db_t, m, fs, scores10,
                         batch_width(kernel));
      return;
  }
}

}  // namespace bussense::simd
