#include "core/svg_map.h"

#include <fstream>
#include <ostream>
#include <stdexcept>

namespace bussense {

std::string speed_level_color(SpeedLevel level) {
  switch (level) {
    case SpeedLevel::kVerySlow: return "#c62828";  // deep red
    case SpeedLevel::kSlow: return "#ef6c00";      // orange
    case SpeedLevel::kMedium: return "#f9a825";    // amber
    case SpeedLevel::kFast: return "#9ccc65";      // light green
    case SpeedLevel::kVeryFast: return "#2e7d32";  // green
  }
  return "#000000";
}

namespace {

class SvgWriter {
 public:
  SvgWriter(std::ostream& os, const BoundingBox& region,
            const SvgMapOptions& options)
      : os_(os), region_(region), options_(options) {}

  double x(double wx) const {
    return (wx - region_.min.x) * options_.pixels_per_meter + kMargin;
  }
  double y(double wy) const {
    // SVG y grows downward; world y grows north.
    return (region_.max.y - wy) * options_.pixels_per_meter + kMargin;
  }

  void header() {
    const double w = region_.width() * options_.pixels_per_meter + 2 * kMargin;
    const double h = region_.height() * options_.pixels_per_meter + 2 * kMargin;
    os_ << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << w
        << "\" height=\"" << h << "\" viewBox=\"0 0 " << w << ' ' << h
        << "\">\n<rect width=\"100%\" height=\"100%\" fill=\"#fafafa\"/>\n";
  }

  void polyline(const Polyline& path, const std::string& color, double width,
                double opacity = 1.0) {
    os_ << "<polyline fill=\"none\" stroke=\"" << color << "\" stroke-width=\""
        << width << "\" stroke-opacity=\"" << opacity
        << "\" stroke-linecap=\"round\" points=\"";
    for (const Point& v : path.vertices()) {
      os_ << x(v.x) << ',' << y(v.y) << ' ';
    }
    os_ << "\"/>\n";
  }

  void span(const BusRoute& route, double arc_from, double arc_to,
            const std::string& color, double width) {
    os_ << "<polyline fill=\"none\" stroke=\"" << color << "\" stroke-width=\""
        << width << "\" stroke-linecap=\"round\" points=\"";
    const double step = 40.0;
    for (double arc = arc_from; arc < arc_to; arc += step) {
      const Point p = route.path().point_at(arc);
      os_ << x(p.x) << ',' << y(p.y) << ' ';
    }
    const Point last = route.path().point_at(arc_to);
    os_ << x(last.x) << ',' << y(last.y) << "\"/>\n";
  }

  void circle(Point p, double r, const std::string& color) {
    os_ << "<circle cx=\"" << x(p.x) << "\" cy=\"" << y(p.y) << "\" r=\"" << r
        << "\" fill=\"" << color << "\"/>\n";
  }

  void footer() { os_ << "</svg>\n"; }

  static constexpr double kMargin = 10.0;

 private:
  std::ostream& os_;
  const BoundingBox& region_;
  const SvgMapOptions& options_;
};

}  // namespace

void write_svg_map(const TrafficMap& map, const SegmentCatalog& catalog,
                   std::ostream& os, const SvgMapOptions& options) {
  const City& city = catalog.city();
  SvgWriter svg(os, city.region(), options);
  svg.header();
  // Base layer: the whole road network.
  for (const RoadLink& link : city.network().links()) {
    svg.polyline(link.path, "#cccccc", options.road_width_px);
  }
  // Live traffic layer.
  for (const MapSegment& seg : map.segments()) {
    const SpanInfo* info = catalog.adjacent(seg.key);
    if (!info) continue;
    svg.span(city.route(info->route), info->arc_from, info->arc_to,
             speed_level_color(seg.level), options.traffic_width_px);
  }
  // Stops on top.
  if (options.draw_stops) {
    for (const BusStop& stop : city.stops()) {
      svg.circle(stop.position, options.stop_radius_px, "#424242");
    }
  }
  svg.footer();
}

void write_svg_map(const TrafficMap& map, const SegmentCatalog& catalog,
                   const std::string& path, const SvgMapOptions& options) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("write_svg_map: cannot write " + path);
  write_svg_map(map, catalog, os, options);
}

}  // namespace bussense
