// Per-bus-stop co-clustering of matched samples (paper Section III-C.2).
//
// When a bus dwells at a stop, several passengers tap in quick succession;
// the resulting samples are redundant observations of the same stop. Two
// samples e_i, e_j are clustered together when
//
//   (t0 − |t_j − t_i|)/t0 + L(e_i, e_j) > ε,      (paper Eq. 1)
//   L = (s0 − |s_j − s_i|)/s0  if matched stops agree, else 0
//
// with s0 = 7 (max similarity score), t0 = 30 s, ε = 0.6. Clusters record a
// candidate pool — the matched stops of their members with per-stop
// probability p and mean similarity s̄ — consumed by the trip mapper.
#pragma once

#include <vector>

#include "citynet/types.h"
#include "common/sim_time.h"
#include "sensing/trip.h"

namespace bussense {

/// A sample that survived per-sample matching.
struct MatchedSample {
  CellularSample sample;
  StopId stop = kInvalidStop;  ///< best-match effective stop
  double score = 0.0;          ///< its similarity score
};

struct ClusteringConfig {
  double max_score = 7.0;  ///< s0
  double max_gap_s = 30.0; ///< t0
  double epsilon = 0.6;    ///< ε (paper: accuracy plateaus around 0.3–1.3)
};

struct StopCandidate {
  StopId stop = kInvalidStop;
  double probability = 0.0;      ///< p_k(i): fraction of members matching stop
  double mean_similarity = 0.0;  ///< s̄_k(i)
};

struct SampleCluster {
  std::vector<MatchedSample> members;     ///< in time order
  std::vector<StopCandidate> candidates;  ///< by descending probability

  SimTime arrival_time() const { return members.front().sample.time; }
  SimTime departure_time() const { return members.back().sample.time; }
  /// Highest-probability candidate (ties: higher mean similarity).
  const StopCandidate& best_candidate() const { return candidates.front(); }
};

/// Pairwise affinity of Eq. 1 (left-hand side).
double cluster_affinity(const MatchedSample& a, const MatchedSample& b,
                        const ClusteringConfig& config);

/// Clusters samples (must be in non-decreasing time order). A sample joins
/// the current cluster if its affinity with any member exceeds ε; otherwise
/// it opens a new cluster.
std::vector<SampleCluster> cluster_samples(const std::vector<MatchedSample>& samples,
                                           const ClusteringConfig& config = {});

}  // namespace bussense
