// Bus stop fingerprint database (paper Sections III-B, IV-A).
//
// Keys are *effective* stop ids: opposite-side twins are aggregated into
// one entry, since their fingerprints are nearly identical and the travel
// direction disambiguates the side when mapping traffic (paper III-A). The
// database is built by surveying each stop several times and storing the
// sample with the highest total similarity to the rest (the medoid) — the
// paper's "the sample with the highest similarity with the rest samples is
// chosen as the fingerprint".
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cellular/fingerprint.h"
#include "citynet/city.h"
#include "core/matching.h"
#include "core/matching_simd.h"

namespace bussense {

struct StopRecord {
  StopId stop = kInvalidStop;  ///< effective stop id
  Fingerprint fingerprint;
};

class StopDatabase {
 public:
  StopDatabase() = default;
  // The quantized-view cache (mutex/atomic/unique_ptr) is per-instance and
  // rebuilt lazily, so copies/moves transfer only the logical state.
  StopDatabase(const StopDatabase& other);
  StopDatabase& operator=(const StopDatabase& other);
  StopDatabase(StopDatabase&& other) noexcept;
  StopDatabase& operator=(StopDatabase&& other) noexcept;

  /// Adds or replaces the fingerprint of an effective stop.
  void add(StopId effective_stop, Fingerprint fingerprint);

  const std::vector<StopRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }

  const Fingerprint* fingerprint_of(StopId effective_stop) const;

  /// Inverted cell-ID index: indices into records() whose fingerprint
  /// contains `cell`, ascending, one entry per occurrence. nullptr when no
  /// record carries the cell. StopMatcher intersects these posting lists to
  /// generate match candidates instead of scanning the whole database.
  const std::vector<std::uint32_t>* postings(CellId cell) const;

  /// Quantized SoA mirror of records() (DESIGN.md §12): every cell ID is
  /// mapped to a dense int16 rank through a DB-owned dictionary, and the
  /// rank arrays are stored contiguously grouped by fingerprint-length
  /// class — the layout the batch-scoring kernel (core/matching_simd.h)
  /// packs its transposed lanes from. Equality is preserved exactly (the
  /// dictionary is injective), so rank-space alignment scores equal
  /// cell-ID-space scores bitwise.
  struct QuantizedView {
    /// One entry per records() position.
    struct RecordRef {
      std::uint32_t offset = 0;  ///< start of this record's ranks
      std::uint32_t length = 0;  ///< fingerprint length in cells
    };

    /// False when the dictionary outgrew the int16 rank space (> 32768
    /// distinct cell IDs) — callers must fall back to the scalar
    /// representation. The paper's whole-city deployments sit 4 orders of
    /// magnitude below the cap.
    bool valid = false;
    std::vector<std::int16_t> ranks;  ///< all fingerprints, length-grouped
    std::vector<RecordRef> record;    ///< indexed by record position
    std::unordered_map<CellId, std::int16_t> dictionary;

    /// Rank of an upload cell; simd::kUnknownRank when the database never
    /// saw the cell (compares unequal to every stored rank by design).
    std::int16_t rank_of(CellId cell) const {
      const auto it = dictionary.find(cell);
      return it == dictionary.end() ? simd::kUnknownRank : it->second;
    }
  };

  /// The quantized view, built lazily on first use. Concurrent readers are
  /// safe (double-checked build under a mutex); add() invalidates the view
  /// and, like all mutation, must not race readers.
  const QuantizedView& quantized() const;

 private:
  void index_cells(std::uint32_t record);
  void unindex_cells(std::uint32_t record);
  void build_quantized(QuantizedView& view) const;

  std::vector<StopRecord> records_;
  std::unordered_map<StopId, std::size_t> index_;
  std::unordered_map<CellId, std::vector<std::uint32_t>> postings_;

  mutable std::mutex quantized_mutex_;
  mutable std::unique_ptr<QuantizedView> quantized_;
  mutable std::atomic<bool> quantized_ready_{false};
};

/// Medoid selection: the sample with the highest summed similarity to the
/// other samples. Precondition: samples not empty.
Fingerprint select_representative(const std::vector<Fingerprint>& samples,
                                  const MatchingConfig& config = {});

/// Builds a database for every effective stop of `city`. `scan` is invoked
/// `runs_per_stop` times per effective stop (run index passed through) and
/// should return one survey fingerprint — benches wire it to
/// World::scan_stop.
StopDatabase build_stop_database(
    const City& city,
    const std::function<Fingerprint(StopId stop, int run)>& scan,
    int runs_per_stop, const MatchingConfig& config = {});

}  // namespace bussense
