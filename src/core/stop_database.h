// Bus stop fingerprint database (paper Sections III-B, IV-A).
//
// Keys are *effective* stop ids: opposite-side twins are aggregated into
// one entry, since their fingerprints are nearly identical and the travel
// direction disambiguates the side when mapping traffic (paper III-A). The
// database is built by surveying each stop several times and storing the
// sample with the highest total similarity to the rest (the medoid) — the
// paper's "the sample with the highest similarity with the rest samples is
// chosen as the fingerprint".
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cellular/fingerprint.h"
#include "citynet/city.h"
#include "core/matching.h"

namespace bussense {

struct StopRecord {
  StopId stop = kInvalidStop;  ///< effective stop id
  Fingerprint fingerprint;
};

class StopDatabase {
 public:
  /// Adds or replaces the fingerprint of an effective stop.
  void add(StopId effective_stop, Fingerprint fingerprint);

  const std::vector<StopRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }

  const Fingerprint* fingerprint_of(StopId effective_stop) const;

  /// Inverted cell-ID index: indices into records() whose fingerprint
  /// contains `cell`, ascending, one entry per occurrence. nullptr when no
  /// record carries the cell. StopMatcher intersects these posting lists to
  /// generate match candidates instead of scanning the whole database.
  const std::vector<std::uint32_t>* postings(CellId cell) const;

 private:
  void index_cells(std::uint32_t record);
  void unindex_cells(std::uint32_t record);

  std::vector<StopRecord> records_;
  std::unordered_map<StopId, std::size_t> index_;
  std::unordered_map<CellId, std::vector<std::uint32_t>> postings_;
};

/// Medoid selection: the sample with the highest summed similarity to the
/// other samples. Precondition: samples not empty.
Fingerprint select_representative(const std::vector<Fingerprint>& samples,
                                  const MatchingConfig& config = {});

/// Builds a database for every effective stop of `city`. `scan` is invoked
/// `runs_per_stop` times per effective stop (run index passed through) and
/// should return one survey fingerprint — benches wire it to
/// World::scan_stop.
StopDatabase build_stop_database(
    const City& city,
    const std::function<Fingerprint(StopId stop, int run)>& scan,
    int runs_per_stop, const MatchingConfig& config = {});

}  // namespace bussense
