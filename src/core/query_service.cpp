#include "core/query_service.h"

namespace bussense {

QueryService::QueryService(const EpochPublisher& publisher,
                           QueryServiceConfig config)
    : publisher_(&publisher),
      config_(config),
      predictor_(publisher.catalog(), config.predictor),
      metrics_(std::make_unique<MetricsRegistry>()) {
  if (config_.obs.enabled) {
    inst_.segment = &metrics_->counter("queries.segment");
    inst_.eta = &metrics_->counter("queries.eta");
    inst_.region = &metrics_->counter("queries.region");
    inst_.knearest = &metrics_->counter("queries.knearest");
    inst_.no_epoch = &metrics_->counter("queries.no_epoch");
    inst_.lat_segment = &metrics_->histogram("query.latency.segment");
    inst_.lat_eta = &metrics_->histogram("query.latency.eta");
    inst_.lat_region = &metrics_->histogram("query.latency.region");
    inst_.lat_knearest = &metrics_->histogram("query.latency.knearest");
  }
}

SegmentSpeedResult QueryService::segment_speed(const SegmentKey& key) const {
  const double t0 = inst_.lat_segment ? monotonic_time_s() : 0.0;
  SegmentSpeedResult out;
  if (const EpochPublisher::Pin p = publisher_->pin()) {
    out.epoch_id = p->id();
    out.epoch_time = p->time();
    if (const MapSegment* seg = p->segment(key)) {
      out.live = true;
      out.speed_kmh = seg->speed_kmh;
      out.level = seg->level;
      out.updated_at = seg->updated_at;
      out.observation_count = seg->observation_count;
    }
  } else if (inst_.no_epoch) {
    inst_.no_epoch->inc();
  }
  if (inst_.segment) inst_.segment->inc();
  if (inst_.lat_segment) inst_.lat_segment->record(monotonic_time_s() - t0);
  return out;
}

RouteEtaResult QueryService::route_eta(const BusRoute& route, int from_index,
                                       SimTime departure) const {
  const double t0 = inst_.lat_eta ? monotonic_time_s() : 0.0;
  RouteEtaResult out;
  if (const EpochPublisher::Pin p = publisher_->pin()) {
    out.epoch_id = p->id();
    out.epoch_time = p->time();
    const EpochSnapshot* snap = p.get();
    out.arrivals = predictor_.predict(
        route, from_index, departure,
        [snap](const SegmentKey& key) { return snap->fused(key); },
        /*now=*/snap->time());
  } else {
    // No epoch yet: free-flow predictions (no speed source), with the
    // departure instant standing in for "now".
    if (inst_.no_epoch) inst_.no_epoch->inc();
    out.arrivals = predictor_.predict(
        route, from_index, departure,
        [](const SegmentKey&) { return std::optional<FusedSpeed>(); },
        /*now=*/departure);
  }
  if (inst_.eta) inst_.eta->inc();
  if (inst_.lat_eta) inst_.lat_eta->record(monotonic_time_s() - t0);
  return out;
}

RegionAggregate QueryService::region_aggregate(const BoundingBox& box) const {
  const double t0 = inst_.lat_region ? monotonic_time_s() : 0.0;
  RegionAggregate out;
  if (const EpochPublisher::Pin p = publisher_->pin()) {
    out = p->region(box);
  } else if (inst_.no_epoch) {
    inst_.no_epoch->inc();
  }
  if (inst_.region) inst_.region->inc();
  if (inst_.lat_region) inst_.lat_region->record(monotonic_time_s() - t0);
  return out;
}

KNearestResult QueryService::k_nearest_live_segments(Point p,
                                                     std::size_t k) const {
  const double t0 = inst_.lat_knearest ? monotonic_time_s() : 0.0;
  KNearestResult out;
  if (const EpochPublisher::Pin pin = publisher_->pin()) {
    out.epoch_id = pin->id();
    out.epoch_time = pin->time();
    out.nearest = pin->k_nearest(p, k);
  } else if (inst_.no_epoch) {
    inst_.no_epoch->inc();
  }
  if (inst_.knearest) inst_.knearest->inc();
  if (inst_.lat_knearest) {
    inst_.lat_knearest->record(monotonic_time_s() - t0);
  }
  return out;
}

}  // namespace bussense
