#include "core/serialization.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace bussense {

namespace {

constexpr const char* kDbHeader = "bussense-stopdb v1";
constexpr const char* kTripsHeader = "bussense-trips v1";

// Hostile-input bounds (the fuzz suite drives these): a count field or a
// fingerprint longer than any real upload is an attack on the allocator,
// not data. Loaders must reject it *before* committing memory.
constexpr std::size_t kMaxSamplesPerTrip = 1u << 20;
constexpr std::size_t kMaxCellsPerFingerprint = 4096;
// Never trust a count field for allocation; grow from a small floor and
// let push_back pay as real lines actually arrive.
constexpr std::size_t kMaxTrustedReserve = 1024;

std::string join_cells(const Fingerprint& fp) {
  return fp.empty() ? "-" : to_string(fp);
}

Fingerprint parse_cells(const std::string& field) {
  Fingerprint fp;
  if (field == "-") return fp;
  std::stringstream ss(field);
  std::string token;
  while (std::getline(ss, token, ',')) {
    try {
      std::size_t parsed = 0;
      const long value = std::stol(token, &parsed);
      // stol("12x") happily returns 12; partially numeric tokens are
      // corruption, not data.
      if (parsed != token.size()) throw std::runtime_error("trailing junk");
      fp.cells.push_back(static_cast<CellId>(value));
    } catch (const std::exception&) {
      throw std::runtime_error("serialization: bad cell id '" + token + "'");
    }
    if (fp.cells.size() > kMaxCellsPerFingerprint) {
      throw std::runtime_error("serialization: fingerprint too long");
    }
  }
  if (fp.cells.empty()) {
    throw std::runtime_error("serialization: empty cell list '" + field + "'");
  }
  return fp;
}

}  // namespace

void save_stop_database(const StopDatabase& database, std::ostream& os) {
  os << kDbHeader << '\n';
  for (const StopRecord& record : database.records()) {
    os << "stop " << record.stop << ' ' << join_cells(record.fingerprint)
       << '\n';
  }
}

StopDatabase load_stop_database(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != kDbHeader) {
    throw std::runtime_error("serialization: missing stop-db header");
  }
  StopDatabase db;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::stringstream ss(line);
    std::string keyword, cells;
    long stop = 0;
    if (!(ss >> keyword >> stop >> cells) || keyword != "stop") {
      throw std::runtime_error("serialization: bad stop-db line: " + line);
    }
    if (stop < 0 || stop > std::numeric_limits<StopId>::max()) {
      throw std::runtime_error("serialization: stop id out of range: " + line);
    }
    db.add(static_cast<StopId>(stop), parse_cells(cells));
  }
  return db;
}

void save_trips(const std::vector<TripUpload>& trips, std::ostream& os) {
  os << kTripsHeader << '\n';
  for (const TripUpload& trip : trips) {
    os << "trip " << trip.participant_id << ' ' << trip.samples.size() << '\n';
    for (const CellularSample& sample : trip.samples) {
      os << "sample " << sample.time << ' ' << join_cells(sample.fingerprint)
         << '\n';
    }
  }
}

std::vector<TripUpload> load_trips(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != kTripsHeader) {
    throw std::runtime_error("serialization: missing trips header");
  }
  std::vector<TripUpload> trips;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::stringstream ss(line);
    std::string keyword;
    ss >> keyword;
    if (keyword != "trip") {
      throw std::runtime_error("serialization: expected trip line: " + line);
    }
    TripUpload trip;
    long long samples = 0;
    if (!(ss >> trip.participant_id >> samples)) {
      throw std::runtime_error("serialization: bad trip line: " + line);
    }
    // The count field is attacker-controlled: a negative value would wrap
    // to huge through std::size_t, and a huge one is an overcommit
    // allocation with no bytes behind it. Bound it before any reserve.
    if (samples < 0 ||
        static_cast<std::size_t>(samples) > kMaxSamplesPerTrip) {
      throw std::runtime_error("serialization: sample count out of bounds: " +
                               line);
    }
    const auto count = static_cast<std::size_t>(samples);
    trip.samples.reserve(std::min(count, kMaxTrustedReserve));
    for (std::size_t i = 0; i < count; ++i) {
      if (!std::getline(is, line)) {
        throw std::runtime_error("serialization: truncated trip");
      }
      std::stringstream sl(line);
      std::string cells;
      CellularSample sample;
      if (!(sl >> keyword >> sample.time >> cells) || keyword != "sample") {
        throw std::runtime_error("serialization: bad sample line: " + line);
      }
      if (!std::isfinite(sample.time)) {
        throw std::runtime_error("serialization: non-finite sample time: " +
                                 line);
      }
      sample.fingerprint = parse_cells(cells);
      trip.samples.push_back(std::move(sample));
    }
    trips.push_back(std::move(trip));
  }
  return trips;
}

void save_stop_database(const StopDatabase& database, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("serialization: cannot write " + path);
  save_stop_database(database, os);
}

StopDatabase load_stop_database(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("serialization: cannot read " + path);
  return load_stop_database(is);
}

}  // namespace bussense
