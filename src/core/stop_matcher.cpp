#include "core/stop_matcher.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>

namespace bussense {

namespace {

// Candidate-generation scratch: shared-cell occurrence counts per record
// plus the list of records touched (so resets cost O(touched), not O(db)).
// thread_local because the concurrent server matches from many workers.
struct CandidateScratch {
  std::vector<std::uint32_t> counts;
  std::vector<std::uint32_t> touched;
};
thread_local CandidateScratch t_scratch;

}  // namespace

void StopMatcherConfig::validate() const {
  if (!std::isfinite(accept_threshold)) {
    throw std::invalid_argument(
        "StopMatcherConfig: accept_threshold must be finite");
  }
  if (!std::isfinite(matching.match_score) ||
      !std::isfinite(matching.mismatch_penalty) ||
      !std::isfinite(matching.gap_penalty)) {
    throw std::invalid_argument(
        "StopMatcherConfig: matching scores must be finite");
  }
}

StopMatcher::StopMatcher(const StopDatabase& database, StopMatcherConfig config)
    : database_(&database), config_(config) {
  config_.validate();
}

void StopMatcher::bind_metrics(MetricsRegistry* registry) {
  if (registry == nullptr) {
    calls_ = considered_ = candidates_ = pruned_ = accepted_ = nullptr;
    return;
  }
  calls_ = &registry->counter("matcher.calls");
  considered_ = &registry->counter("matcher.records_considered");
  candidates_ = &registry->counter("matcher.gamma_candidates");
  pruned_ = &registry->counter("matcher.records_pruned");
  accepted_ = &registry->counter("matcher.records_accepted");
}

void StopMatcher::flush(const MatchStats& local, MatchStats* stats) const {
  if (stats) *stats = local;
  if (calls_) {
    calls_->inc();
    considered_->add(local.records_considered);
    candidates_->add(local.gamma_candidates);
    pruned_->add(local.records_pruned);
    accepted_->add(local.records_accepted);
  }
}

bool StopMatcher::index_usable() const {
  // The pruning bound score <= match_score · shared_cells needs a positive
  // match reward, non-negative penalties and a positive threshold; exotic
  // configurations keep the exhaustive scan.
  return config_.accel.use_index && config_.matching.match_score > 0.0 &&
         config_.matching.mismatch_penalty >= 0.0 &&
         config_.matching.gap_penalty >= 0.0 && config_.accept_threshold > 0.0;
}

const std::vector<std::uint32_t>& StopMatcher::gather_candidates(
    const Fingerprint& sample) const {
  CandidateScratch& s = t_scratch;
  if (s.counts.size() < database_->size()) s.counts.resize(database_->size(), 0);
  for (const std::uint32_t rec : s.touched) s.counts[rec] = 0;
  s.touched.clear();
  for (const CellId cell : sample.cells) {
    const std::vector<std::uint32_t>* list = database_->postings(cell);
    if (!list) continue;
    for (const std::uint32_t rec : *list) {
      if (s.counts[rec]++ == 0) s.touched.push_back(rec);
    }
  }
  // Database order, so equal (score, common) ties resolve exactly as the
  // brute-force scan does (first record wins).
  std::sort(s.touched.begin(), s.touched.end());
  return s.touched;
}

std::optional<MatchResult> StopMatcher::match(const Fingerprint& sample,
                                              MatchStats* stats) const {
  MatchStats local;
  local.records_considered = database_->size();
  std::optional<MatchResult> best;
  const auto consider = [&](const StopRecord& record) {
    ++local.records_accepted;
    const double score = similarity(sample, record.fingerprint, config_.matching);
    if (score < config_.accept_threshold) return;
    const int common = common_cell_count(sample, record.fingerprint);
    const bool better =
        !best || score > best->score ||
        (score == best->score && common > best->common_cells);
    if (better) best = MatchResult{record.stop, score, common};
  };

  if (!index_usable()) {
    local.gamma_candidates = database_->size();
    for (const StopRecord& record : database_->records()) consider(record);
    local.records_pruned = local.records_considered - local.records_accepted;
    flush(local, stats);
    return best;
  }

  const double ms = config_.matching.match_score;
  for (const std::uint32_t rec : gather_candidates(sample)) {
    const StopRecord& record = database_->records()[rec];
    // Upper bound: at most one match per shared cell occurrence, and no
    // more matches than the shorter fingerprint has cells.
    const double bound = std::min(ms * t_scratch.counts[rec],
                                  max_similarity(sample, record.fingerprint,
                                                 config_.matching));
    if (bound < config_.accept_threshold) continue;  // cannot reach γ
    ++local.gamma_candidates;
    // A candidate strictly below the incumbent score can neither win nor
    // tie (tie-breaks only apply at equal scores), so skip its DP.
    if (best && bound < best->score) continue;
    consider(record);
  }
  local.records_pruned = local.records_considered - local.records_accepted;
  flush(local, stats);
  return best;
}

std::vector<MatchResult> StopMatcher::match_all(const Fingerprint& sample,
                                                MatchStats* stats) const {
  MatchStats local;
  local.records_considered = database_->size();
  std::vector<MatchResult> out;
  const auto consider = [&](const StopRecord& record) {
    ++local.records_accepted;
    const double score = similarity(sample, record.fingerprint, config_.matching);
    if (score >= config_.accept_threshold) {
      out.push_back(MatchResult{record.stop, score,
                                common_cell_count(sample, record.fingerprint)});
    }
  };

  if (!index_usable()) {
    local.gamma_candidates = database_->size();
    for (const StopRecord& record : database_->records()) consider(record);
  } else {
    const double ms = config_.matching.match_score;
    for (const std::uint32_t rec : gather_candidates(sample)) {
      const StopRecord& record = database_->records()[rec];
      const double bound = std::min(ms * t_scratch.counts[rec],
                                    max_similarity(sample, record.fingerprint,
                                                   config_.matching));
      if (bound < config_.accept_threshold) continue;
      ++local.gamma_candidates;
      consider(record);
    }
  }
  local.records_pruned = local.records_considered - local.records_accepted;
  flush(local, stats);
  std::sort(out.begin(), out.end(), [](const MatchResult& a, const MatchResult& b) {
    return a.score > b.score ||
           (a.score == b.score && a.common_cells > b.common_cells);
  });
  return out;
}

}  // namespace bussense
