#include "core/stop_matcher.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <stdexcept>

namespace bussense {

namespace {

// Candidate-generation scratch: shared-cell occurrence counts per record
// plus the list of records touched (so resets cost O(touched), not O(db)).
// thread_local because the concurrent server matches from many workers.
struct CandidateScratch {
  std::vector<std::uint32_t> counts;
  std::vector<std::uint32_t> touched;
};
thread_local CandidateScratch t_scratch;

// Retention cap for the candidate scratch. One match() against a huge
// database would otherwise pin O(db) counts capacity for the thread's whole
// lifetime (ingestion workers are long-lived); above this many entries the
// scratch is rebuilt at the size the current database actually needs.
constexpr std::size_t kScratchRetainEntries = std::size_t{1} << 16;

// Batch-scoring scratch for the SIMD path (one per thread, reused):
// the quantized upload, the survivors (record ids ascending) with their γ
// upper bounds, per-survivor scores, the length-class processing order and
// the kernel's transposed lane block.
struct BatchScratch {
  std::vector<std::int16_t> sample_ranks;
  std::vector<std::uint32_t> survivors;
  std::vector<double> bounds;
  std::vector<double> scores;  ///< kNotScored until a DP ran
  std::vector<std::uint32_t> order;
  std::vector<std::uint32_t> lane_record;
  std::vector<std::int16_t> db_t;
  std::vector<std::int16_t> lane_scores;
};
thread_local BatchScratch t_batch;

constexpr double kNotScored = -1.0;  // real scores are >= 0

}  // namespace

void StopMatcherConfig::validate() const {
  if (!std::isfinite(accept_threshold)) {
    throw std::invalid_argument(
        "StopMatcherConfig: accept_threshold must be finite");
  }
  if (!std::isfinite(matching.match_score) ||
      !std::isfinite(matching.mismatch_penalty) ||
      !std::isfinite(matching.gap_penalty)) {
    throw std::invalid_argument(
        "StopMatcherConfig: matching scores must be finite");
  }
}

StopMatcher::StopMatcher(const StopDatabase& database, StopMatcherConfig config)
    : database_(&database), config_(config) {
  config_.validate();
  fixed_ = quantize_scores(config_.matching);
}

void StopMatcher::bind_metrics(MetricsRegistry* registry) {
  if (registry == nullptr) {
    calls_ = considered_ = candidates_ = pruned_ = accepted_ = bound_skipped_ =
        nullptr;
    return;
  }
  calls_ = &registry->counter("matcher.calls");
  considered_ = &registry->counter("matcher.records_considered");
  candidates_ = &registry->counter("matcher.gamma_candidates");
  pruned_ = &registry->counter("matcher.records_pruned");
  accepted_ = &registry->counter("matcher.records_accepted");
  bound_skipped_ = &registry->counter("matcher.records_bound_skipped");
}

void StopMatcher::flush(const MatchStats& local, MatchStats* stats) const {
  if (stats) *stats = local;
  if (calls_) {
    calls_->inc();
    considered_->add(local.records_considered);
    candidates_->add(local.gamma_candidates);
    pruned_->add(local.records_pruned);
    accepted_->add(local.records_accepted);
    bound_skipped_->add(local.records_bound_skipped);
  }
}

bool StopMatcher::index_usable() const {
  // The pruning bound score <= match_score · shared_cells needs a positive
  // match reward, non-negative penalties and a positive threshold; exotic
  // configurations keep the exhaustive scan.
  return config_.accel.use_index && config_.matching.match_score > 0.0 &&
         config_.matching.mismatch_penalty >= 0.0 &&
         config_.matching.gap_penalty >= 0.0 && config_.accept_threshold > 0.0;
}

bool StopMatcher::simd_active() const {
  // The batch path needs the exact fixed-point arithmetic (for the
  // bit-identity contract) and the same soundness conditions as the γ
  // bound; anything else keeps the scalar scan, which — since the scalar
  // path is the reference — is trivially identical across the knob.
  // It also needs a vector unit to pay for the batch packing: without
  // AVX2/NEON the lane-major scalar batch is slower than the plain DP
  // (measured ~0.5–0.8x), so kernel-less hosts keep the classic loop.
  return config_.accel.use_simd &&
         simd::active_kernel() != simd::Kernel::kScalar && fixed_.exact &&
         fixed_.match > 0 && fixed_.mismatch >= 0 && fixed_.gap >= 0 &&
         config_.accept_threshold > 0.0 && database_->quantized().valid;
}

std::size_t StopMatcher::thread_scratch_capacity() {
  return t_scratch.counts.capacity();
}

const std::vector<std::uint32_t>& StopMatcher::gather_candidates(
    const Fingerprint& sample) const {
  CandidateScratch& s = t_scratch;
  if (s.counts.capacity() > kScratchRetainEntries &&
      std::max(database_->size(), kScratchRetainEntries) < s.counts.capacity()) {
    // Shrink back after a huge-database excursion: swap in right-sized
    // buffers (assign/shrink_to_fit may legally keep the old capacity).
    std::vector<std::uint32_t>(database_->size(), 0).swap(s.counts);
    std::vector<std::uint32_t>().swap(s.touched);
  }
  if (s.counts.size() < database_->size()) s.counts.resize(database_->size(), 0);
  for (const std::uint32_t rec : s.touched) s.counts[rec] = 0;
  s.touched.clear();
  for (const CellId cell : sample.cells) {
    const std::vector<std::uint32_t>* list = database_->postings(cell);
    if (!list) continue;
    for (const std::uint32_t rec : *list) {
      if (s.counts[rec]++ == 0) s.touched.push_back(rec);
    }
  }
  // Database order, so equal (score, common) ties resolve exactly as the
  // brute-force scan does (first record wins).
  std::sort(s.touched.begin(), s.touched.end());
  return s.touched;
}

void StopMatcher::collect_survivors(const Fingerprint& sample,
                                    MatchStats& local) const {
  BatchScratch& b = t_batch;
  b.survivors.clear();
  b.bounds.clear();
  const double ms = config_.matching.match_score;
  const auto push = [&](std::uint32_t rec, double bound) {
    if (bound < config_.accept_threshold) return;  // cannot reach γ
    b.survivors.push_back(rec);
    b.bounds.push_back(bound);
  };
  if (index_usable()) {
    for (const std::uint32_t rec : gather_candidates(sample)) {
      // Upper bound: at most one match per shared cell occurrence, and no
      // more matches than the shorter fingerprint has cells.
      push(rec, std::min(ms * t_scratch.counts[rec],
                         max_similarity(sample,
                                        database_->records()[rec].fingerprint,
                                        config_.matching)));
    }
  } else {
    for (std::uint32_t rec = 0;
         rec < static_cast<std::uint32_t>(database_->size()); ++rec) {
      push(rec, max_similarity(sample, database_->records()[rec].fingerprint,
                               config_.matching));
    }
  }
  local.gamma_candidates = b.survivors.size();
}

void StopMatcher::score_survivors(const Fingerprint& sample,
                                  bool prune_incumbent,
                                  MatchStats& local) const {
  BatchScratch& b = t_batch;
  const StopDatabase::QuantizedView& qv = database_->quantized();
  const std::size_t n = sample.cells.size();

  // Quantize the upload once per call.
  b.sample_ranks.clear();
  b.sample_ranks.reserve(n);
  for (const CellId cell : sample.cells) {
    b.sample_ranks.push_back(qv.rank_of(cell));
  }

  const std::size_t count = b.survivors.size();
  b.scores.assign(count, kNotScored);
  // Process survivors grouped by length class so every batch shares one DP
  // shape; stable sort keeps record order inside a class.
  b.order.resize(count);
  std::iota(b.order.begin(), b.order.end(), 0u);
  std::stable_sort(b.order.begin(), b.order.end(),
                   [&](std::uint32_t x, std::uint32_t y) {
                     return qv.record[b.survivors[x]].length <
                            qv.record[b.survivors[y]].length;
                   });

  const simd::Kernel kernel = simd::active_kernel();
  const std::size_t width = simd::batch_width(kernel);
  b.lane_scores.resize(width);
  b.lane_record.reserve(width);

  // Incumbent best score so far. Skipping a survivor whose bound is
  // *strictly* below it is sound in any processing order: the final best can
  // only be higher, so the skipped record can neither win nor tie.
  double best_score = kNotScored;
  const auto note_score = [&](std::size_t idx, double score) {
    b.scores[idx] = score;
    if (score > best_score) best_score = score;
    ++local.records_accepted;
  };

  std::size_t pos = 0;
  while (pos < count) {
    const std::uint32_t class_len = qv.record[b.survivors[b.order[pos]]].length;
    std::size_t end = pos;
    while (end < count &&
           qv.record[b.survivors[b.order[end]]].length == class_len) {
      ++end;
    }
    if (!fixed_point_usable(fixed_, std::min(n, std::size_t{class_len}))) {
      // Degenerate class (e.g. fingerprints long enough to overflow int16
      // deci-scores): score scalar — similarity() makes the identical
      // fixed/double choice per pair, preserving bit-identity.
      for (std::size_t k = pos; k < end; ++k) {
        const std::size_t idx = b.order[k];
        if (prune_incumbent && best_score >= 0.0 &&
            b.bounds[idx] < best_score) {
          ++local.records_bound_skipped;
          continue;
        }
        note_score(idx,
                   similarity(sample,
                              database_->records()[b.survivors[idx]].fingerprint,
                              config_.matching));
      }
      pos = end;
      continue;
    }
    // Kernel batches of `width` lanes over this class.
    b.db_t.resize(std::size_t{class_len} * width);
    std::size_t k = pos;
    while (k < end) {
      b.lane_record.clear();
      while (k < end && b.lane_record.size() < width) {
        const std::size_t idx = b.order[k++];
        if (prune_incumbent && best_score >= 0.0 &&
            b.bounds[idx] < best_score) {
          ++local.records_bound_skipped;
          continue;
        }
        b.lane_record.push_back(static_cast<std::uint32_t>(idx));
      }
      if (b.lane_record.empty()) continue;
      const std::size_t lanes = b.lane_record.size();
      // Transpose the candidates' rank arrays into lane-major rows; unused
      // lanes carry kPadRank, which matches nothing and scores 0.
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        const StopDatabase::QuantizedView::RecordRef ref =
            qv.record[b.survivors[b.lane_record[lane]]];
        const std::int16_t* src = qv.ranks.data() + ref.offset;
        for (std::size_t j = 0; j < class_len; ++j) {
          b.db_t[j * width + lane] = src[j];
        }
      }
      for (std::size_t lane = lanes; lane < width; ++lane) {
        for (std::size_t j = 0; j < class_len; ++j) {
          b.db_t[j * width + lane] = simd::kPadRank;
        }
      }
      simd::score_batch(b.sample_ranks.data(), n, b.db_t.data(), class_len,
                        fixed_, b.lane_scores.data(), kernel);
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        note_score(b.lane_record[lane], fixed_to_score(b.lane_scores[lane]));
      }
    }
    pos = end;
  }
}

std::optional<MatchResult> StopMatcher::match(const Fingerprint& sample,
                                              MatchStats* stats) const {
  MatchStats local;
  local.records_considered = database_->size();
  std::optional<MatchResult> best;

  if (simd_active()) {
    collect_survivors(sample, local);
    score_survivors(sample, /*prune_incumbent=*/true, local);
    const BatchScratch& b = t_batch;
    // Selection in ascending record order reproduces the scalar loop's
    // tie-breaks exactly (first record wins equal (score, common)).
    for (std::size_t i = 0; i < b.survivors.size(); ++i) {
      const double score = b.scores[i];
      if (score < config_.accept_threshold) continue;  // skipped or below γ
      const StopRecord& record = database_->records()[b.survivors[i]];
      const int common = common_cell_count(sample, record.fingerprint);
      const bool better =
          !best || score > best->score ||
          (score == best->score && common > best->common_cells);
      if (better) best = MatchResult{record.stop, score, common};
    }
    local.records_pruned = local.records_considered - local.records_accepted;
    flush(local, stats);
    return best;
  }

  const auto consider = [&](const StopRecord& record) {
    ++local.records_accepted;
    const double score = similarity(sample, record.fingerprint, config_.matching);
    if (score < config_.accept_threshold) return;
    const int common = common_cell_count(sample, record.fingerprint);
    const bool better =
        !best || score > best->score ||
        (score == best->score && common > best->common_cells);
    if (better) best = MatchResult{record.stop, score, common};
  };

  if (!index_usable()) {
    local.gamma_candidates = database_->size();
    for (const StopRecord& record : database_->records()) consider(record);
    local.records_pruned = local.records_considered - local.records_accepted;
    flush(local, stats);
    return best;
  }

  const double ms = config_.matching.match_score;
  for (const std::uint32_t rec : gather_candidates(sample)) {
    const StopRecord& record = database_->records()[rec];
    // Upper bound: at most one match per shared cell occurrence, and no
    // more matches than the shorter fingerprint has cells.
    const double bound = std::min(ms * t_scratch.counts[rec],
                                  max_similarity(sample, record.fingerprint,
                                                 config_.matching));
    if (bound < config_.accept_threshold) continue;  // cannot reach γ
    ++local.gamma_candidates;
    // A candidate strictly below the incumbent score can neither win nor
    // tie (tie-breaks only apply at equal scores), so skip its DP.
    if (best && bound < best->score) {
      ++local.records_bound_skipped;
      continue;
    }
    consider(record);
  }
  local.records_pruned = local.records_considered - local.records_accepted;
  flush(local, stats);
  return best;
}

std::vector<MatchResult> StopMatcher::match_all(const Fingerprint& sample,
                                                MatchStats* stats) const {
  MatchStats local;
  local.records_considered = database_->size();
  std::vector<MatchResult> out;

  if (simd_active()) {
    collect_survivors(sample, local);
    score_survivors(sample, /*prune_incumbent=*/false, local);
    const BatchScratch& b = t_batch;
    for (std::size_t i = 0; i < b.survivors.size(); ++i) {
      const double score = b.scores[i];
      if (score < config_.accept_threshold) continue;
      const StopRecord& record = database_->records()[b.survivors[i]];
      out.push_back(MatchResult{record.stop, score,
                                common_cell_count(sample, record.fingerprint)});
    }
  } else {
    const auto consider = [&](const StopRecord& record) {
      ++local.records_accepted;
      const double score =
          similarity(sample, record.fingerprint, config_.matching);
      if (score >= config_.accept_threshold) {
        out.push_back(MatchResult{record.stop, score,
                                  common_cell_count(sample, record.fingerprint)});
      }
    };
    if (!index_usable()) {
      local.gamma_candidates = database_->size();
      for (const StopRecord& record : database_->records()) consider(record);
    } else {
      const double ms = config_.matching.match_score;
      for (const std::uint32_t rec : gather_candidates(sample)) {
        const StopRecord& record = database_->records()[rec];
        const double bound = std::min(ms * t_scratch.counts[rec],
                                      max_similarity(sample, record.fingerprint,
                                                     config_.matching));
        if (bound < config_.accept_threshold) continue;
        ++local.gamma_candidates;
        consider(record);
      }
    }
  }
  local.records_pruned = local.records_considered - local.records_accepted;
  flush(local, stats);
  std::sort(out.begin(), out.end(), [](const MatchResult& a, const MatchResult& b) {
    return a.score > b.score ||
           (a.score == b.score && a.common_cells > b.common_cells);
  });
  return out;
}

}  // namespace bussense
