#include "core/stop_matcher.h"

#include <algorithm>

namespace bussense {

StopMatcher::StopMatcher(const StopDatabase& database, StopMatcherConfig config)
    : database_(&database), config_(config) {}

std::optional<MatchResult> StopMatcher::match(const Fingerprint& sample) const {
  std::optional<MatchResult> best;
  for (const StopRecord& record : database_->records()) {
    const double score = similarity(sample, record.fingerprint, config_.matching);
    if (score < config_.accept_threshold) continue;
    const int common = common_cell_count(sample, record.fingerprint);
    const bool better =
        !best || score > best->score ||
        (score == best->score && common > best->common_cells);
    if (better) best = MatchResult{record.stop, score, common};
  }
  return best;
}

std::vector<MatchResult> StopMatcher::match_all(const Fingerprint& sample) const {
  std::vector<MatchResult> out;
  for (const StopRecord& record : database_->records()) {
    const double score = similarity(sample, record.fingerprint, config_.matching);
    if (score >= config_.accept_threshold) {
      out.push_back(MatchResult{record.stop, score,
                                common_cell_count(sample, record.fingerprint)});
    }
  }
  std::sort(out.begin(), out.end(), [](const MatchResult& a, const MatchResult& b) {
    return a.score > b.score ||
           (a.score == b.score && a.common_cells > b.common_cells);
  });
  return out;
}

}  // namespace bussense
