// Per-sample matching against the stop database (paper Section III-C.1).
//
// Each uploaded cellular sample is scored against every database
// fingerprint with the modified Smith–Waterman similarity; the best-scoring
// stop wins, ties broken by the larger number of common cell IDs. Samples
// whose best score falls below the acceptance threshold γ (= 2, from the
// Figure 2 measurement) are discarded as noise.
#pragma once

#include <optional>
#include <vector>

#include "core/matching.h"
#include "core/stop_database.h"

namespace bussense {

struct StopMatcherConfig {
  MatchingConfig matching;
  double accept_threshold = 2.0;  ///< γ
};

struct MatchResult {
  StopId stop = kInvalidStop;  ///< effective stop id
  double score = 0.0;
  int common_cells = 0;
};

class StopMatcher {
 public:
  StopMatcher(const StopDatabase& database, StopMatcherConfig config = {});

  /// Best acceptable match, or nullopt if the best score is below γ.
  std::optional<MatchResult> match(const Fingerprint& sample) const;

  /// Every stop scoring >= γ, best first (diagnostics / ablations).
  std::vector<MatchResult> match_all(const Fingerprint& sample) const;

  const StopMatcherConfig& config() const { return config_; }

 private:
  const StopDatabase* database_;
  StopMatcherConfig config_;
};

}  // namespace bussense
