// Per-sample matching against the stop database (paper Section III-C.1).
//
// Each uploaded cellular sample is scored with the modified Smith–Waterman
// similarity; the best-scoring stop wins, ties broken by the larger number
// of common cell IDs. Samples whose best score falls below the acceptance
// threshold γ (= 2, from the Figure 2 measurement) are discarded as noise.
//
// Candidate generation is sublinear in the database size: because an
// alignment can score at most match_score per shared cell ID, a record can
// only reach γ if it shares ≥ ⌈γ / match_score⌉ cell IDs with the sample
// (= 2 in the paper's setting). The matcher intersects the database's
// inverted cell-ID posting lists to count shared cells per record, then
// aligns only the records passing that bound — with results identical to
// the full scan. `use_index = false` keeps the brute-force scan for the
// scalability ablations.
#pragma once

#include <optional>
#include <vector>

#include "core/matching.h"
#include "core/stop_database.h"

namespace bussense {

struct StopMatcherConfig {
  MatchingConfig matching;
  double accept_threshold = 2.0;  ///< γ
  /// Generate candidates from the inverted cell-ID index. Falls back to the
  /// full scan automatically when the γ-derived bound is unsound (negative
  /// penalties, non-positive match score or threshold).
  bool use_index = true;
};

struct MatchResult {
  StopId stop = kInvalidStop;  ///< effective stop id
  double score = 0.0;
  int common_cells = 0;
};

/// Per-call work counters (benches report candidates/sample).
struct MatchStats {
  std::size_t records = 0;     ///< database size
  std::size_t candidates = 0;  ///< records surviving the γ pruning bound
  std::size_t aligned = 0;     ///< records actually run through the DP
};

class StopMatcher {
 public:
  StopMatcher(const StopDatabase& database, StopMatcherConfig config = {});

  /// Best acceptable match, or nullopt if the best score is below γ.
  std::optional<MatchResult> match(const Fingerprint& sample,
                                   MatchStats* stats = nullptr) const;

  /// Every stop scoring >= γ, best first (diagnostics / ablations).
  std::vector<MatchResult> match_all(const Fingerprint& sample,
                                     MatchStats* stats = nullptr) const;

  const StopMatcherConfig& config() const { return config_; }

 private:
  bool index_usable() const;
  /// Fills the thread-local scratch with (record, shared-cell count) pairs,
  /// records ascending; returns the list of touched records.
  const std::vector<std::uint32_t>& gather_candidates(
      const Fingerprint& sample) const;

  const StopDatabase* database_;
  StopMatcherConfig config_;
};

}  // namespace bussense
