// Per-sample matching against the stop database (paper Section III-C.1).
//
// Each uploaded cellular sample is scored with the modified Smith–Waterman
// similarity; the best-scoring stop wins, ties broken by the larger number
// of common cell IDs. Samples whose best score falls below the acceptance
// threshold γ (= 2, from the Figure 2 measurement) are discarded as noise.
//
// Candidate generation is sublinear in the database size: because an
// alignment can score at most match_score per shared cell ID, a record can
// only reach γ if it shares ≥ ⌈γ / match_score⌉ cell IDs with the sample
// (= 2 in the paper's setting). The matcher intersects the database's
// inverted cell-ID posting lists to count shared cells per record, then
// aligns only the records passing that bound — with results identical to
// the full scan. `accel.use_index = false` keeps the brute-force scan for
// the scalability ablations.
//
// Surviving candidates are scored through the fixed-point batch kernel
// (core/matching_simd.h) 8–16 at a time when `accel.use_simd` is on and the
// scoring parameters quantize exactly; an upper-bound prescreen
// (shared-cell count × match_score, the same trick as CellScanner's RSS
// precheck) additionally skips candidates that provably cannot beat the
// incumbent best. Both are pure optimisations: results — scores, winners,
// tie-breaks — are bit-identical to the scalar scan (property-tested in
// tests/test_matching_simd.cpp).
#pragma once

#include <optional>
#include <vector>

#include "core/matching.h"
#include "core/matching_simd.h"
#include "core/stop_database.h"
#include "obs/metrics.h"

namespace bussense {

struct StopMatcherConfig {
  MatchingConfig matching;
  double accept_threshold = 2.0;  ///< γ

  /// Fast-path switches (DESIGN.md §6). Grouped so ablations flip one
  /// documented knob instead of a loose boolean.
  struct Acceleration {
    /// Generate candidates from the inverted cell-ID index. Falls back to
    /// the full scan automatically when the γ-derived bound is unsound
    /// (negative penalties, non-positive match score or threshold).
    bool use_index = true;
    /// Batch-score candidates through the runtime-dispatched fixed-point
    /// kernel (AVX2/NEON/scalar-batch, core/matching_simd.h), with the
    /// incumbent upper-bound prescreen. Engages only when the scoring
    /// parameters quantize exactly (×10), γ > 0, the database's
    /// quantized view is valid and a vector unit backs the kernel at
    /// runtime (without AVX2/NEON the batch packing costs more than it
    /// saves, so those hosts keep the classic scalar loop); match
    /// results are bit-identical either way, so the knob is pure
    /// performance (stats profiles differ).
    bool use_simd = true;
  };
  Acceleration accel;

  /// Throws std::invalid_argument on nonsense (non-finite γ or matching
  /// scores). Called by StopMatcher.
  void validate() const;
};

struct MatchResult {
  StopId stop = kInvalidStop;  ///< effective stop id
  double score = 0.0;
  int common_cells = 0;
};

/// Per-call work counters. Follows the repo-wide stats convention:
/// `*_considered` (total work the brute-force path would do), `*_pruned`
/// (work the fast path provably skipped), `*_accepted` (work actually
/// done), with reset()/merge() for aggregation — see ScanStats.
struct MatchStats {
  std::size_t records_considered = 0;  ///< database size
  std::size_t gamma_candidates = 0;    ///< records surviving the γ bound
  std::size_t records_pruned = 0;      ///< records never run through the DP
  std::size_t records_accepted = 0;    ///< records actually aligned
  /// γ-passing candidates whose upper bound could not beat the incumbent
  /// best score, so their DP was provably unnecessary (SIMD path only;
  /// included in records_pruned).
  std::size_t records_bound_skipped = 0;

  void reset() { *this = MatchStats{}; }
  void merge(const MatchStats& other) {
    records_considered += other.records_considered;
    gamma_candidates += other.gamma_candidates;
    records_pruned += other.records_pruned;
    records_accepted += other.records_accepted;
    records_bound_skipped += other.records_bound_skipped;
  }
};

class StopMatcher {
 public:
  StopMatcher(const StopDatabase& database, StopMatcherConfig config = {});

  /// Best acceptable match, or nullopt if the best score is below γ.
  std::optional<MatchResult> match(const Fingerprint& sample,
                                   MatchStats* stats = nullptr) const;

  /// Every stop scoring >= γ, best first (diagnostics / ablations).
  std::vector<MatchResult> match_all(const Fingerprint& sample,
                                     MatchStats* stats = nullptr) const;

  /// Accumulates every call's MatchStats into `registry` (counters
  /// `matcher.calls`, `matcher.records_considered/pruned/accepted`,
  /// `matcher.gamma_candidates`, `matcher.records_bound_skipped`). Counter
  /// updates are lock-free, so bound matchers stay safe to use from many
  /// threads; recording never affects match results. Pass nullptr to unbind.
  void bind_metrics(MetricsRegistry* registry);

  const StopMatcherConfig& config() const { return config_; }

  /// True when match()/match_all() will take the batch-kernel path for this
  /// matcher (knob on, exact fixed-point config, valid quantized view).
  bool simd_active() const;

  /// Capacity (entries) of the calling thread's candidate scratch — test
  /// hook for the retention cap (DESIGN.md §12).
  static std::size_t thread_scratch_capacity();

 private:
  bool index_usable() const;
  /// Fills the thread-local scratch with (record, shared-cell count) pairs,
  /// records ascending; returns the list of touched records.
  const std::vector<std::uint32_t>& gather_candidates(
      const Fingerprint& sample) const;
  /// Candidate record ids + γ upper bounds for the SIMD path, via the index
  /// when usable, else the full record range with the length-derived bound.
  void collect_survivors(const Fingerprint& sample, MatchStats& local) const;
  /// Batch-scores the collected survivors into the thread-local scratch;
  /// `prune_incumbent` enables the cannot-beat-the-best skip (match() only).
  void score_survivors(const Fingerprint& sample, bool prune_incumbent,
                       MatchStats& local) const;
  void flush(const MatchStats& local, MatchStats* stats) const;

  const StopDatabase* database_;
  StopMatcherConfig config_;
  FixedScores fixed_;  ///< quantized scoring parameters (cached)
  // Cached instrument handles (null when unbound). The registry outlives
  // the matcher by contract.
  Counter* calls_ = nullptr;
  Counter* considered_ = nullptr;
  Counter* candidates_ = nullptr;
  Counter* pruned_ = nullptr;
  Counter* accepted_ = nullptr;
  Counter* bound_skipped_ = nullptr;
};

}  // namespace bussense
