// TrafficIngestor: the one server API every backend front end implements.
//
// Four front ends share the pipeline of Figure 4 — the serial
// TrafficServer, the thread-safe ConcurrentTrafficServer, the
// asynchronous IngestService (bounded queue + worker pool), and the
// scale-out ShardedIngestService (participant-hash shards over lock-free
// SPSC rings). Examples, benches and deployments program against this
// interface and swap the front end with one line; all four produce
// bit-identical fused maps for the same accepted upload multiset
// (property-tested).
//
// Call contract, shared by every implementation:
//
//   * process_trip(upload) — hand one trip to the backend. Synchronous
//     front ends return a fully populated TripReport with outcome
//     kProcessed; the asynchronous service returns immediately with
//     kQueued (report data empty — read the metrics registry instead) or
//     kRejected plus a RejectReason when backpressure applies.
//   * advance_time(now) — closes fusion periods up to `now`. Must only be
//     called once every estimate older than `now`'s period has been handed
//     in (the asynchronous service drains its queue first, preserving the
//     same contract).
//   * snapshot(now, max_age) — the fused traffic map.
//   * metrics() — the pipeline-wide MetricsRegistry (throughput, rejection
//     counts, per-stage latency). Always present; empty when observability
//     is disabled in ServerConfig.
//
// Durable front ends (ServerConfig::durability.enabled) add a lifecycle:
//
//   * open() — recover from the write-ahead trip log + latest checkpoint
//     (DESIGN.md §14), then start accepting trips. With durability off this
//     is a no-op returning an empty report.
//   * checkpoint() — persist a recovery point covering everything processed
//     so far. The caller must be quiescent (asynchronous front ends drain
//     first, same contract as advance_time()).
//   * close() — final WAL sync + shut the log; subsequent process_trip()
//     calls are rejected with kShutdown. Destruction without close() models
//     a crash: recovery falls back to checkpoint + WAL replay.
#pragma once

#include <cstdint>

#include "common/sim_time.h"
#include "core/clustering.h"
#include "core/segment_catalog.h"
#include "core/traffic_map.h"
#include "core/travel_estimator.h"
#include "core/trip_mapper.h"
#include "obs/metrics.h"
#include "sensing/trip.h"

namespace bussense {

class EpochPublisher;  // core/epoch_publisher.h (serving tier, DESIGN.md §13)

/// What happened to an upload handed to process_trip().
enum class IngestOutcome : std::uint8_t {
  kProcessed,  ///< ran the full pipeline synchronously
  kQueued,     ///< accepted into the ingest queue; processed asynchronously
  kRejected,   ///< not accepted — see TripReport::reject_reason
};

/// Why an upload was rejected. kQueueFull/kShutdown are backpressure
/// (DESIGN.md §8); the rest are admission-control verdicts on the upload
/// itself (DESIGN.md §9) — counted under ingest.rejected.*.
enum class RejectReason : std::uint8_t {
  kNone,         ///< not rejected
  kQueueFull,    ///< bounded queue at capacity under the kReject policy
  kShutdown,     ///< service is shutting down / already shut down
  kDuplicate,    ///< replay of a recently admitted upload (signature LRU)
  kMalformed,    ///< sample-count/fingerprint-size/duration bounds violated
  kNonMonotone,  ///< sample timestamps disordered beyond tolerance
};

inline const char* to_string(IngestOutcome o) {
  switch (o) {
    case IngestOutcome::kProcessed: return "processed";
    case IngestOutcome::kQueued: return "queued";
    case IngestOutcome::kRejected: return "rejected";
  }
  return "?";
}

inline const char* to_string(RejectReason r) {
  switch (r) {
    case RejectReason::kNone: return "none";
    case RejectReason::kQueueFull: return "queue_full";
    case RejectReason::kShutdown: return "shutdown";
    case RejectReason::kDuplicate: return "duplicate";
    case RejectReason::kMalformed: return "malformed";
    case RejectReason::kNonMonotone: return "non_monotone";
  }
  return "?";
}

/// Everything the pipeline derived from one trip (kept for evaluation).
/// Asynchronous front ends return only the outcome fields.
struct TripReport {
  IngestOutcome outcome = IngestOutcome::kProcessed;
  RejectReason reject_reason = RejectReason::kNone;
  std::vector<MatchedSample> matched;    ///< samples that passed γ
  std::size_t rejected_samples = 0;      ///< below-γ samples discarded
  MappedTrip mapped;                     ///< stop per cluster
  std::vector<SpeedEstimate> estimates;  ///< per adjacent segment

  bool accepted() const { return outcome != IngestOutcome::kRejected; }
};

/// What open() recovered from durable state (DESIGN.md §14).
struct RecoveryReport {
  bool durable = false;            ///< durability enabled on this front end
  bool checkpoint_loaded = false;  ///< a valid checkpoint seeded the state
  std::uint64_t checkpoint_id = 0;
  std::uint64_t replayed_trips = 0;       ///< WAL kTrip records re-applied
  std::uint64_t replayed_time_marks = 0;  ///< watermark barriers re-applied
  std::uint64_t duplicate_records = 0;    ///< skipped non-advancing seqs
  std::uint64_t truncated_tail_bytes = 0; ///< torn/corrupt tail repaired
  /// Per WAL segment, total durable kTrip records (checkpoint-covered +
  /// replayed) — how many admitted uploads survived the crash.
  std::vector<std::uint64_t> recovered_trips_per_segment;
};

class TrafficIngestor {
 public:
  virtual ~TrafficIngestor() = default;

  /// Lifecycle (see header comment). Defaults are durability-off no-ops so
  /// non-durable front ends and existing callers stay source-compatible.
  virtual RecoveryReport open() { return {}; }
  virtual std::uint64_t checkpoint() { return 0; }
  virtual void close() {}

  virtual TripReport process_trip(const TripUpload& trip) = 0;
  virtual void advance_time(SimTime now) = 0;
  virtual TrafficMap snapshot(SimTime now, double max_age_s = 3600.0) const = 0;

  /// Publishes the current fused state as a serving epoch (DESIGN.md §13):
  /// the same fused state and strict-`>` staleness boundary as
  /// snapshot(now, max_age_s) — the published epoch's map is bit-identical
  /// to that snapshot — built by visitation (no intermediate fused-map
  /// copy) and swapped in behind the publisher's atomic epoch pointer.
  /// Mirrors snapshot(): asynchronous front ends do NOT drain first; call
  /// advance_time()/drain() beforehand for the full-ingest contract.
  /// Returns the new epoch id.
  virtual std::uint64_t publish_epoch(EpochPublisher& publisher, SimTime now,
                                      double max_age_s = 3600.0) const = 0;

  virtual const MetricsRegistry& metrics() const = 0;
  virtual const SegmentCatalog& catalog() const = 0;
  virtual std::uint64_t trips_processed() const = 0;
};

}  // namespace bussense
