#include "core/traffic_map.h"

#include <algorithm>
#include <cmath>

namespace bussense {

SpeedLevel classify_speed(double kmh) {
  if (kmh < 20.0) return SpeedLevel::kVerySlow;
  if (kmh < 30.0) return SpeedLevel::kSlow;
  if (kmh < 40.0) return SpeedLevel::kMedium;
  if (kmh < 50.0) return SpeedLevel::kFast;
  return SpeedLevel::kVeryFast;
}

std::string to_string(SpeedLevel level) {
  switch (level) {
    case SpeedLevel::kVerySlow: return "<20 km/h";
    case SpeedLevel::kSlow: return "20-30 km/h";
    case SpeedLevel::kMedium: return "30-40 km/h";
    case SpeedLevel::kFast: return "40-50 km/h";
    case SpeedLevel::kVeryFast: return ">50 km/h";
  }
  return "?";
}

void TrafficMap::add_fused(const SegmentKey& key, const FusedSpeed& fused,
                           const SegmentCatalog& catalog, SimTime now,
                           double max_age_s) {
  // Strict `>`: an estimate exactly max_age_s old is still included.
  if (now - fused.updated_at > max_age_s) return;
  MapSegment seg;
  seg.key = key;
  seg.speed_kmh = fused.mean_kmh;
  seg.level = classify_speed(fused.mean_kmh);
  seg.updated_at = fused.updated_at;
  seg.observation_count = fused.observation_count;
  segments_.push_back(seg);
  const SpanInfo* info = catalog.adjacent(key);
  segment_lengths_.push_back(info ? info->length_m : 0.0);
}

TrafficMap TrafficMap::from_fused(
    const std::vector<std::pair<SegmentKey, FusedSpeed>>& fused_estimates,
    const SegmentCatalog& catalog, SimTime now, double max_age_s) {
  TrafficMap map;
  map.time_ = now;
  for (const auto& [key, fused] : fused_estimates) {
    map.add_fused(key, fused, catalog, now, max_age_s);
  }
  return map;
}

TrafficMap TrafficMap::snapshot(const SpeedFusion& fusion,
                                const SegmentCatalog& catalog, SimTime now,
                                double max_age_s) {
  return from_fused(fusion.all(), catalog, now, max_age_s);
}

TrafficMap TrafficMap::snapshot(const StripedSpeedFusion& fusion,
                                const SegmentCatalog& catalog, SimTime now,
                                double max_age_s) {
  return from_fused(fusion.all(), catalog, now, max_age_s);
}

std::map<SpeedLevel, int> TrafficMap::level_histogram() const {
  std::map<SpeedLevel, int> hist;
  for (const MapSegment& seg : segments_) ++hist[seg.level];
  return hist;
}

double TrafficMap::coverage_ratio(const SegmentCatalog& catalog) const {
  // Forward and reverse segments of one corridor lie on the same physical
  // links; count each link's covered metres once, capped at its length.
  std::map<SegmentId, double> covered_m;
  for (const MapSegment& seg : segments_) {
    const SpanInfo* info = catalog.adjacent(seg.key);
    if (!info) continue;
    for (const auto& [link, len] : info->links) {
      double& m = covered_m[link];
      m = std::min(m + len, catalog.city().network().link(link).length());
    }
  }
  double covered = 0.0;
  for (const auto& [link, len] : covered_m) {
    (void)link;
    covered += len;
  }
  const double total = catalog.city().network().total_length();
  return total > 0.0 ? std::min(1.0, covered / total) : 0.0;
}

double TrafficMap::mean_speed_kmh() const {
  double len_sum = 0.0, weighted = 0.0;
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    len_sum += segment_lengths_[i];
    weighted += segments_[i].speed_kmh * segment_lengths_[i];
  }
  return len_sum > 0.0 ? weighted / len_sum : 0.0;
}

std::string TrafficMap::render_ascii(const SegmentCatalog& catalog, int cols,
                                     int rows) const {
  const City& city = catalog.city();
  const BoundingBox& region = city.region();
  std::vector<std::string> grid(static_cast<std::size_t>(rows),
                                std::string(static_cast<std::size_t>(cols), ' '));
  auto plot = [&](Point p, char c, bool overwrite) {
    const int x = static_cast<int>((p.x - region.min.x) / region.width() *
                                   (cols - 1));
    const int y = static_cast<int>((p.y - region.min.y) / region.height() *
                                   (rows - 1));
    if (x < 0 || x >= cols || y < 0 || y >= rows) return;
    char& cell = grid[static_cast<std::size_t>(rows - 1 - y)]
                     [static_cast<std::size_t>(x)];
    if (overwrite || cell == ' ') cell = c;
  };
  auto plot_span = [&](const SpanInfo& info, char c, bool overwrite) {
    const BusRoute& route = city.route(info.route);
    for (double arc = info.arc_from; arc <= info.arc_to; arc += 60.0) {
      plot(route.path().point_at(arc), c, overwrite);
    }
  };
  // Background: all catalogued (bus-covered) segments.
  for (const SegmentKey& key : catalog.adjacent_keys()) {
    if (const SpanInfo* info = catalog.adjacent(key)) {
      plot_span(*info, '.', /*overwrite=*/false);
    }
  }
  // Foreground: live estimates, digit = level (1 slowest).
  for (const MapSegment& seg : segments_) {
    if (const SpanInfo* info = catalog.adjacent(seg.key)) {
      const char c = static_cast<char>('1' + static_cast<int>(seg.level));
      plot_span(*info, c, /*overwrite=*/true);
    }
  }
  std::string out;
  for (const std::string& row : grid) {
    out += row;
    out += '\n';
  }
  return out;
}

}  // namespace bussense
