// Modified Smith–Waterman fingerprint matching (paper Section III-C.1).
//
// Cellular RSS magnitudes vary with conditions but the *rank order* of
// towers at a location is stable, so two fingerprints (ordered cell-ID
// sets) are compared by local sequence alignment over the IDs: match = +1,
// mismatch = gap = −0.3 (the penalty the paper selected by sweeping 0.1–0.9).
// The paper's Table I instance — upload {1,2,3,4,5} vs database {1,7,3,5} —
// aligns with 3 matches, 1 gap and 1 mismatch for a score of 2.4.
#pragma once

#include <vector>

#include "cellular/fingerprint.h"

namespace bussense {

struct MatchingConfig {
  double match_score = 1.0;
  double mismatch_penalty = 0.3;  ///< subtracted per aligned non-equal pair
  double gap_penalty = 0.3;       ///< subtracted per skipped element
};

/// Similarity score of the optimal local alignment (>= 0). Allocation-free
/// on warm calls: runs a two-row rolling DP over a thread-local scratch
/// buffer (safe to call concurrently from ingestion workers).
double similarity(const Fingerprint& upload, const Fingerprint& database,
                  const MatchingConfig& config = {});

/// Alignment with traceback statistics (for reporting and tests).
struct Alignment {
  double score = 0.0;
  int matches = 0;
  int mismatches = 0;
  int gaps = 0;
};

Alignment align(const Fingerprint& upload, const Fingerprint& database,
                const MatchingConfig& config = {});

/// Largest attainable score: min of the two lengths, all matches. The
/// clustering stage normalises score differences by the global maximum s0
/// (= scanner max_towers = 7 in the paper's setting).
double max_similarity(const Fingerprint& a, const Fingerprint& b,
                      const MatchingConfig& config = {});

}  // namespace bussense
