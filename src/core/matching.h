// Modified Smith–Waterman fingerprint matching (paper Section III-C.1).
//
// Cellular RSS magnitudes vary with conditions but the *rank order* of
// towers at a location is stable, so two fingerprints (ordered cell-ID
// sets) are compared by local sequence alignment over the IDs: match = +1,
// mismatch = gap = −0.3 (the penalty the paper selected by sweeping 0.1–0.9).
// The paper's Table I instance — upload {1,2,3,4,5} vs database {1,7,3,5} —
// aligns with 3 matches, 1 gap and 1 mismatch for a score of 2.4.
#pragma once

#include <cstdint>
#include <vector>

#include "cellular/fingerprint.h"

namespace bussense {

struct MatchingConfig {
  double match_score = 1.0;
  double mismatch_penalty = 0.3;  ///< subtracted per aligned non-equal pair
  double gap_penalty = 0.3;       ///< subtracted per skipped element
};

/// Fixed-point (×10) quantization of the scoring parameters. Every score the
/// paper uses is an exact multiple of 0.1 (match +1.0, mismatch/gap −0.3), so
/// the DP can run in int16 "deci-score" units. Integer arithmetic is exact
/// and the final deci-score converts back through one /10.0 division, so the
/// scalar and vectorized batch paths (core/matching_simd.h) produce
/// *bit-identical* doubles — the identity the matcher's SIMD on/off property
/// suite pins (DESIGN.md §12).
struct FixedScores {
  std::int16_t match = 0;     ///< +units per matched pair
  std::int16_t mismatch = 0;  ///< −units per aligned non-equal pair
  std::int16_t gap = 0;       ///< −units per skipped element
  bool exact = false;  ///< all three round-trip exactly through the ×10 scale
};

/// Deci-units per score point. Kept as a named constant so the identity
/// argument ("exact multiples of 0.1") reads off the code.
inline constexpr int kFixedPointScale = 10;

/// The one conversion every fixed-point path uses: deci-score → double.
/// (Division, not ×0.1 — 0.1 is not exactly representable and would round
/// differently.)
inline double fixed_to_score(std::int32_t deci) {
  return static_cast<double>(deci) / static_cast<double>(kFixedPointScale);
}

/// Quantizes the config; `exact` is false when any parameter is not an
/// exact multiple of 0.1 representable in int16 (such configs keep the
/// double-precision DP everywhere).
FixedScores quantize_scores(const MatchingConfig& config);

/// True when the int16 DP is exact for a pair whose shorter fingerprint has
/// `min_len` cells: parameters round-trip, penalties are non-negative (cell
/// values then stay in [−32767, match·min_len]) and the best attainable
/// deci-score match·min_len fits int16.
bool fixed_point_usable(const FixedScores& scores, std::size_t min_len);

/// Similarity score of the optimal local alignment (>= 0). Allocation-free
/// on warm calls: runs a two-row rolling DP over a thread-local scratch
/// buffer (safe to call concurrently from ingestion workers). When the
/// config quantizes exactly (the default does) the DP runs in int16
/// fixed-point — the same arithmetic as the SIMD batch kernel, so scores
/// agree bitwise across paths; otherwise it falls back to doubles.
double similarity(const Fingerprint& upload, const Fingerprint& database,
                  const MatchingConfig& config = {});

/// Alignment with traceback statistics (for reporting and tests).
struct Alignment {
  double score = 0.0;
  int matches = 0;
  int mismatches = 0;
  int gaps = 0;
};

Alignment align(const Fingerprint& upload, const Fingerprint& database,
                const MatchingConfig& config = {});

/// Largest attainable score: min of the two lengths, all matches. The
/// clustering stage normalises score differences by the global maximum s0
/// (= scanner max_towers = 7 in the paper's setting).
double max_similarity(const Fingerprint& a, const Fingerprint& b,
                      const MatchingConfig& config = {});

}  // namespace bussense
