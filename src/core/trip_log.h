// Write-ahead trip log: the append half of the durable-ingest subsystem
// (DESIGN.md §14).
//
// Every upload a front end admits is appended here *before* analysis, so a
// crash between append and fusion-apply loses nothing: recovery replays the
// suffix and the admission dedup LRU (PR 5) makes any overlap idempotent.
// The on-disk format is deterministic and self-checking:
//
//   file   := magic "BSWAL01\n" record*
//   record := u32 payload_len | u32 crc32(payload) | payload
//   payload(kTrip)     := u8 type | u64 seq | u64 signature
//                         | u64 skew_offset_bits | i32 participant
//                         | u32 n_samples
//                         | { u64 time_bits | u16 n_cells | varint cell* }*
//   payload(kTimeMark) := u8 type | u64 seq | u64 time_bits
//
// Fixed-width little-endian fields (cell ids as LEB128 varints — they are
// small integers, and log bytes are what the fsync dirty-data flush
// costs), doubles as IEEE-754 bit patterns — the
// same accepted upload stream always produces byte-identical log bytes
// (property-tested). kTrip stores the *post-correction* upload (exactly
// what the pipeline analysed) plus the pre-correction signature and the
// applied clock-skew offset, so replay bypasses admission re-evaluation and
// still rebuilds the dedup/skew state bit-exactly. kTimeMark records each
// advance_time() so recovery restores the admission watermark.
//
// The scanner walks the longest valid prefix: a record whose length field
// overruns the file, whose CRC mismatches, or whose payload fails to decode
// ends the scan — everything after it is a torn/corrupt tail, reported (and
// truncated when `repair`), never propagated. Records whose seq does not
// advance (a duplicated block from a buggy copy) are skipped and counted.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "core/config_common.h"
#include "sensing/trip.h"

namespace bussense {

/// CRC-32 (IEEE 802.3, reflected) of `size` bytes.
std::uint32_t crc32(const std::uint8_t* data, std::size_t size);

enum class WalRecordType : std::uint8_t {
  kTrip = 1,      ///< one admitted upload, post-correction
  kTimeMark = 2,  ///< an advance_time(now) barrier
};

struct WalRecord {
  WalRecordType type = WalRecordType::kTrip;
  std::uint64_t seq = 0;  ///< assigned by the writer; strictly increasing
  // kTrip fields. `signature` is the pre-correction trip_signature (0 when
  // admission/dedup is off); `skew_offset_s` is the offset admission
  // subtracted (0 when uncorrected).
  std::uint64_t signature = 0;
  double skew_offset_s = 0.0;
  TripUpload trip;
  // kTimeMark field.
  SimTime mark_time = 0.0;
};

/// Record payload bytes (no length/CRC framing).
std::vector<std::uint8_t> encode_wal_payload(const WalRecord& record);

/// Strict bounds-checked decode; false on any malformed byte (the scanner
/// treats that as a torn tail).
bool decode_wal_payload(const std::uint8_t* data, std::size_t size,
                        WalRecord* out);

struct WalScanResult {
  std::vector<WalRecord> records;  ///< valid prefix, duplicate seqs skipped
  std::uint64_t next_seq = 1;      ///< 1 + highest seq seen
  std::uint64_t trip_records = 0;  ///< kTrip entries in `records`
  std::uint64_t duplicate_records = 0;  ///< skipped non-advancing seqs
  std::uint64_t truncated_tail_bytes = 0;  ///< bytes past the valid prefix
  bool torn = false;  ///< the tail was invalid (CRC / length / decode)
};

/// Reads the longest valid prefix of a trip log. A missing file is an empty
/// log (not an error). With `repair` the file is truncated to the valid
/// prefix so a writer can append safely after the scan.
WalScanResult scan_trip_log(const std::string& path, bool repair);

/// Appender for one WAL segment. Thread-safe (internal mutex): the
/// concurrent front end appends from any worker thread. The caller scans
/// (and repairs) the segment first and seeds `next_seq` from the scan.
class TripLogWriter {
 public:
  TripLogWriter(std::string path, FsyncPolicy policy,
                std::uint64_t fsync_interval, std::uint64_t next_seq);
  ~TripLogWriter();

  TripLogWriter(const TripLogWriter&) = delete;
  TripLogWriter& operator=(const TripLogWriter&) = delete;

  struct AppendResult {
    std::uint64_t seq = 0;
    std::size_t bytes = 0;  ///< frame bytes written
    bool synced = false;    ///< the fsync policy fired on this append
  };

  /// Assigns the next seq, frames and appends the record, applies the
  /// fsync policy. Throws std::runtime_error on I/O failure (an ingest
  /// tier must not silently drop durability).
  AppendResult append(WalRecord record);

  /// Hot-path variants: same frame bytes as append() with a WalRecord of
  /// the matching type, without materialising one (no TripUpload copy).
  AppendResult append_trip(std::uint64_t signature, double skew_offset_s,
                           const TripUpload& trip);
  AppendResult append_time_mark(SimTime mark_time);

  /// Explicit fsync barrier (checkpoint prologue / close).
  void sync();

  /// sync() + close the descriptor; further appends throw. Idempotent.
  void close();

  const std::string& path() const { return path_; }
  std::uint64_t last_seq() const;
  std::uint64_t appends() const;
  std::uint64_t fsyncs() const;
  std::uint64_t bytes_appended() const;

 private:
  /// Group-commit write() granularity: frames buffer in user space up to
  /// this many bytes; sync()/close() (and the fsync policies) flush first,
  /// so every durability bound is unchanged.
  static constexpr std::size_t kFlushThreshold = 256 * 1024;

  AppendResult append_scratch_locked();
  void flush_locked();
  void sync_locked();

  std::string path_;
  FsyncPolicy policy_;
  std::uint64_t fsync_interval_;

  mutable std::mutex mutex_;
  std::vector<std::uint8_t> scratch_;  ///< reusable frame buffer
  std::vector<std::uint8_t> buffer_;   ///< pending frames (group commit)
  int fd_ = -1;
  std::uint64_t next_seq_;
  std::uint64_t appends_ = 0;
  std::uint64_t appends_since_sync_ = 0;
  std::uint64_t fsyncs_ = 0;
  std::uint64_t bytes_appended_ = 0;
};

}  // namespace bussense
