#include "core/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace bussense {

namespace {

constexpr char kMagic[8] = {'B', 'S', 'C', 'K', 'P', 'T', '1', '\n'};

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(out, bits);
}

struct Reader {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;

  bool u8(std::uint8_t* v) {
    if (size - pos < 1) return false;
    *v = data[pos++];
    return true;
  }
  bool u32(std::uint32_t* v) {
    if (size - pos < 4) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<std::uint32_t>(data[pos + static_cast<std::size_t>(i)])
            << (8 * i);
    }
    pos += 4;
    return true;
  }
  bool u64(std::uint64_t* v) {
    if (size - pos < 8) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<std::uint64_t>(data[pos + static_cast<std::size_t>(i)])
            << (8 * i);
    }
    pos += 8;
    return true;
  }
  bool f64(double* v) {
    std::uint64_t bits = 0;
    if (!u64(&bits)) return false;
    std::memcpy(v, &bits, sizeof *v);
    return true;
  }
  // Guard against bit-flipped counts driving huge allocations: every
  // element of a counted sequence costs at least `min_bytes`.
  bool count(std::uint32_t* v, std::size_t min_bytes) {
    if (!u32(v)) return false;
    return *v <= (size - pos) / std::max<std::size_t>(1, min_bytes);
  }
};

std::string checkpoint_name(std::uint64_t id) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "checkpoint-%020llu.ckpt",
                static_cast<unsigned long long>(id));
  return buf;
}

/// Parses "checkpoint-<id>.ckpt"; false for anything else (tmps included).
bool parse_checkpoint_name(const std::string& name, std::uint64_t* id) {
  constexpr char prefix[] = "checkpoint-";
  constexpr char suffix[] = ".ckpt";
  if (name.size() <= sizeof(prefix) - 1 + sizeof(suffix) - 1) return false;
  if (name.compare(0, sizeof(prefix) - 1, prefix) != 0) return false;
  if (name.compare(name.size() - (sizeof(suffix) - 1), sizeof(suffix) - 1,
                   suffix) != 0) {
    return false;
  }
  const std::string digits = name.substr(
      sizeof(prefix) - 1, name.size() - (sizeof(prefix) - 1) - (sizeof(suffix) - 1));
  if (digits.empty()) return false;
  std::uint64_t value = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *id = value;
  return true;
}

std::vector<std::pair<std::uint64_t, std::filesystem::path>>
list_checkpoints_newest_first(const std::string& directory) {
  std::vector<std::pair<std::uint64_t, std::filesystem::path>> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(directory, ec)) {
    std::uint64_t id = 0;
    if (parse_checkpoint_name(entry.path().filename().string(), &id)) {
      out.emplace_back(id, entry.path());
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return out;
}

void fsync_path(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return;  // best effort (e.g. directories on odd filesystems)
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

std::vector<std::uint8_t> encode_checkpoint(std::uint64_t id,
                                            const CheckpointState& state) {
  std::vector<std::uint8_t> out(kMagic, kMagic + sizeof kMagic);
  put_u64(out, id);
  put_u32(out, static_cast<std::uint32_t>(state.covers_seq.size()));
  for (const std::uint64_t seq : state.covers_seq) put_u64(out, seq);
  put_u64(out, state.trips_processed);
  put_u32(out, static_cast<std::uint32_t>(state.fusion.size()));
  for (const FusionExportEntry& entry : state.fusion) {
    put_u32(out, static_cast<std::uint32_t>(entry.key.from));
    put_u32(out, static_cast<std::uint32_t>(entry.key.to));
    out.push_back(entry.fused ? 1 : 0);
    if (entry.fused) {
      put_f64(out, entry.fused->mean_kmh);
      put_f64(out, entry.fused->variance);
      put_f64(out, entry.fused->updated_at);
      put_u32(out, static_cast<std::uint32_t>(entry.fused->observation_count));
    }
    put_u32(out, static_cast<std::uint32_t>(entry.pending.size()));
    for (const auto& [period, values] : entry.pending) {
      put_u64(out, static_cast<std::uint64_t>(period));
      put_u32(out, static_cast<std::uint32_t>(values.size()));
      for (const double v : values) put_f64(out, v);
    }
  }
  put_u32(out, static_cast<std::uint32_t>(state.admission.size()));
  for (const AdmissionCheckpoint& adm : state.admission) {
    put_u32(out, static_cast<std::uint32_t>(adm.lru_oldest_first.size()));
    for (const std::uint64_t sig : adm.lru_oldest_first) put_u64(out, sig);
    put_u32(out, static_cast<std::uint32_t>(adm.skew_offsets.size()));
    for (const auto& [participant, offset] : adm.skew_offsets) {
      put_u32(out, static_cast<std::uint32_t>(participant));
      put_f64(out, offset);
    }
    out.push_back(adm.have_watermark ? 1 : 0);
    put_f64(out, adm.watermark);
  }
  const std::uint32_t crc =
      crc32(out.data() + sizeof kMagic, out.size() - sizeof kMagic);
  put_u32(out, crc);
  return out;
}

bool decode_checkpoint(const std::uint8_t* data, std::size_t size,
                       std::uint64_t* id, CheckpointState* state) {
  if (size < sizeof kMagic + 4 ||
      std::memcmp(data, kMagic, sizeof kMagic) != 0) {
    return false;
  }
  const std::size_t body = size - sizeof kMagic - 4;
  Reader crc_reader{data + sizeof kMagic + body, 4};
  std::uint32_t crc = 0;
  crc_reader.u32(&crc);
  if (crc32(data + sizeof kMagic, body) != crc) return false;

  Reader r{data + sizeof kMagic, body};
  std::uint32_t n_segments = 0;
  if (!r.u64(id) || !r.count(&n_segments, 8)) return false;
  state->covers_seq.assign(n_segments, 0);
  for (std::uint32_t i = 0; i < n_segments; ++i) {
    if (!r.u64(&state->covers_seq[i])) return false;
  }
  if (!r.u64(&state->trips_processed)) return false;

  std::uint32_t n_fusion = 0;
  if (!r.count(&n_fusion, 13)) return false;
  state->fusion.clear();
  state->fusion.reserve(n_fusion);
  for (std::uint32_t i = 0; i < n_fusion; ++i) {
    FusionExportEntry entry;
    std::uint32_t from = 0, to = 0;
    std::uint8_t has_fused = 0;
    if (!r.u32(&from) || !r.u32(&to) || !r.u8(&has_fused)) return false;
    entry.key.from = static_cast<StopId>(static_cast<std::int32_t>(from));
    entry.key.to = static_cast<StopId>(static_cast<std::int32_t>(to));
    if (has_fused) {
      FusedSpeed fused;
      std::uint32_t observations = 0;
      if (!r.f64(&fused.mean_kmh) || !r.f64(&fused.variance) ||
          !r.f64(&fused.updated_at) || !r.u32(&observations)) {
        return false;
      }
      fused.observation_count = static_cast<int>(observations);
      entry.fused = fused;
    }
    std::uint32_t n_pending = 0;
    if (!r.count(&n_pending, 12)) return false;
    entry.pending.reserve(n_pending);
    for (std::uint32_t p = 0; p < n_pending; ++p) {
      std::uint64_t period = 0;
      std::uint32_t n_values = 0;
      if (!r.u64(&period) || !r.count(&n_values, 8)) return false;
      std::vector<double> values(n_values, 0.0);
      for (std::uint32_t v = 0; v < n_values; ++v) {
        if (!r.f64(&values[v])) return false;
      }
      entry.pending.emplace_back(static_cast<std::int64_t>(period),
                                 std::move(values));
    }
    state->fusion.push_back(std::move(entry));
  }

  std::uint32_t n_admission = 0;
  if (!r.count(&n_admission, 17)) return false;
  state->admission.clear();
  state->admission.reserve(n_admission);
  for (std::uint32_t i = 0; i < n_admission; ++i) {
    AdmissionCheckpoint adm;
    std::uint32_t n_lru = 0;
    if (!r.count(&n_lru, 8)) return false;
    adm.lru_oldest_first.assign(n_lru, 0);
    for (std::uint32_t s = 0; s < n_lru; ++s) {
      if (!r.u64(&adm.lru_oldest_first[s])) return false;
    }
    std::uint32_t n_skew = 0;
    if (!r.count(&n_skew, 12)) return false;
    adm.skew_offsets.reserve(n_skew);
    for (std::uint32_t s = 0; s < n_skew; ++s) {
      std::uint32_t participant = 0;
      double offset = 0.0;
      if (!r.u32(&participant) || !r.f64(&offset)) return false;
      adm.skew_offsets.emplace_back(static_cast<std::int32_t>(participant),
                                    offset);
    }
    std::uint8_t have_watermark = 0;
    if (!r.u8(&have_watermark) || !r.f64(&adm.watermark)) return false;
    adm.have_watermark = have_watermark != 0;
    state->admission.push_back(std::move(adm));
  }
  return r.pos == body;
}

std::optional<LoadedCheckpoint> load_latest_checkpoint(
    const std::string& directory) {
  for (const auto& [id, path] : list_checkpoints_newest_first(directory)) {
    std::ifstream is(path, std::ios::binary);
    if (!is) continue;
    const std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(is)), std::istreambuf_iterator<char>());
    LoadedCheckpoint loaded;
    if (decode_checkpoint(bytes.data(), bytes.size(), &loaded.id,
                          &loaded.state)) {
      return loaded;
    }
    // Corrupt/half-written: skip, an older valid checkpoint (or a full WAL
    // replay) still recovers.
  }
  return std::nullopt;
}

void save_checkpoint_file(const std::string& directory, std::uint64_t id,
                          const CheckpointState& state) {
  const std::vector<std::uint8_t> bytes = encode_checkpoint(id, state);
  const std::filesystem::path dir(directory);
  const std::filesystem::path tmp = dir / (checkpoint_name(id) + ".tmp");
  const std::filesystem::path final_path = dir / checkpoint_name(id);
  {
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
      throw std::runtime_error("cannot create checkpoint " + tmp.string() +
                               ": " + std::strerror(errno));
    }
    std::size_t written = 0;
    while (written < bytes.size()) {
      const ssize_t n = ::write(fd, bytes.data() + written,
                                bytes.size() - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        throw std::runtime_error("checkpoint write failed: " + tmp.string() +
                                 ": " + std::strerror(errno));
      }
      written += static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0) {
      ::close(fd);
      throw std::runtime_error("checkpoint fsync failed: " + tmp.string());
    }
    ::close(fd);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, final_path, ec);
  if (ec) {
    throw std::runtime_error("checkpoint rename failed: " + final_path.string() +
                             ": " + ec.message());
  }
  fsync_path(directory);
}

void prune_checkpoints(const std::string& directory, std::size_t keep) {
  const auto checkpoints = list_checkpoints_newest_first(directory);
  for (std::size_t i = keep; i < checkpoints.size(); ++i) {
    std::error_code ec;
    std::filesystem::remove(checkpoints[i].second, ec);
  }
}

// -------------------------------------------------------- DurabilityManager

DurabilityManager::DurabilityManager(DurabilityConfig config,
                                     std::size_t segments)
    : config_(std::move(config)), segment_count_(std::max<std::size_t>(1, segments)) {
  config_.validate();
}

std::string DurabilityManager::segment_path(std::size_t segment) const {
  char buf[32];
  std::snprintf(buf, sizeof buf, "trips-%04zu.wal", segment);
  return (std::filesystem::path(config_.directory) / buf).string();
}

DurabilityManager::Recovery DurabilityManager::open() {
  if (opened()) throw std::logic_error("DurabilityManager::open called twice");
  std::filesystem::create_directories(config_.directory);

  Recovery recovery;
  recovery.checkpoint = load_latest_checkpoint(config_.directory);
  if (recovery.checkpoint) {
    next_checkpoint_id_ = recovery.checkpoint->id + 1;
    last_checkpoint_id_ = recovery.checkpoint->id;
  }
  recovery.replay.resize(segment_count_);
  recovery.recovered_trips.assign(segment_count_, 0);
  writers_.reserve(segment_count_);
  std::uint64_t replayed = 0;
  for (std::size_t i = 0; i < segment_count_; ++i) {
    WalScanResult scan = scan_trip_log(segment_path(i), /*repair=*/true);
    recovery.truncated_tail_bytes += scan.truncated_tail_bytes;
    recovery.duplicate_records += scan.duplicate_records;
    recovery.recovered_trips[i] = scan.trip_records;
    const std::uint64_t covers =
        recovery.checkpoint && i < recovery.checkpoint->state.covers_seq.size()
            ? recovery.checkpoint->state.covers_seq[i]
            : 0;
    for (WalRecord& record : scan.records) {
      if (record.seq > covers) {
        recovery.replay[i].push_back(std::move(record));
      }
    }
    replayed += recovery.replay[i].size();
    writers_.push_back(std::make_unique<TripLogWriter>(
        segment_path(i), config_.fsync, config_.fsync_interval_records,
        scan.next_seq));
  }
  if (inst_.recovered_records) inst_.recovered_records->add(replayed);
  if (inst_.truncated_tail_bytes) {
    inst_.truncated_tail_bytes->add(recovery.truncated_tail_bytes);
  }
  return recovery;
}

std::uint64_t DurabilityManager::append_trip(std::size_t segment,
                                             const TripUpload& trip,
                                             const AdmitInfo& info) {
  const TripLogWriter::AppendResult result = writers_[segment]->append_trip(
      info.signature, info.skew_offset_s, trip);
  if (inst_.appends) inst_.appends->inc();
  if (inst_.bytes_appended) inst_.bytes_appended->add(result.bytes);
  if (result.synced && inst_.fsyncs) inst_.fsyncs->inc();
  return result.seq;
}

void DurabilityManager::append_time_mark(SimTime now) {
  for (auto& writer : writers_) {
    const TripLogWriter::AppendResult result = writer->append_time_mark(now);
    if (inst_.appends) inst_.appends->inc();
    if (inst_.bytes_appended) inst_.bytes_appended->add(result.bytes);
    if (result.synced && inst_.fsyncs) inst_.fsyncs->inc();
  }
}

std::uint64_t DurabilityManager::save_checkpoint(CheckpointState state) {
  // WAL-before-checkpoint barrier: every record covers_seq claims must be
  // durable before the checkpoint that skips replaying it.
  state.covers_seq.resize(writers_.size());
  for (std::size_t i = 0; i < writers_.size(); ++i) {
    const std::uint64_t before = writers_[i]->fsyncs();
    writers_[i]->sync();
    if (inst_.fsyncs) inst_.fsyncs->add(writers_[i]->fsyncs() - before);
    state.covers_seq[i] = writers_[i]->last_seq();
  }
  const std::uint64_t id = next_checkpoint_id_++;
  save_checkpoint_file(config_.directory, id, state);
  prune_checkpoints(config_.directory, config_.checkpoints_kept);
  last_checkpoint_id_ = id;
  if (inst_.checkpoints) inst_.checkpoints->inc();
  return id;
}

void DurabilityManager::close() {
  for (auto& writer : writers_) {
    const std::uint64_t before = writer->fsyncs();
    writer->close();
    if (inst_.fsyncs) inst_.fsyncs->add(writer->fsyncs() - before);
  }
}

void DurabilityManager::bind_metrics(MetricsRegistry* registry) {
  if (registry == nullptr) {
    inst_ = Instruments{};
    return;
  }
  inst_.appends = &registry->counter("durability.appends");
  inst_.fsyncs = &registry->counter("durability.fsyncs");
  inst_.bytes_appended = &registry->counter("durability.bytes_appended");
  inst_.checkpoints = &registry->counter("durability.checkpoints");
  inst_.recovered_records = &registry->counter("durability.recovered_records");
  inst_.truncated_tail_bytes =
      &registry->counter("durability.truncated_tail_bytes");
}

}  // namespace bussense
