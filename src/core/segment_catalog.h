// Catalog of road segments between bus stops.
//
// The estimation unit of the paper is the road stretch between two stops of
// a route. The catalog precomputes, for every directed route, the effective
// stop sequence with arc positions, and resolves any ordered stop pair
// (from, to) — adjacent or spanning skipped stops — to its road length,
// free travel speed (static public information: road classes and speed
// limits) and underlying links. Keys use effective stop ids.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "citynet/city.h"
#include "citynet/types.h"

namespace bussense {

struct SegmentKey {
  StopId from = kInvalidStop;  ///< effective stop id
  StopId to = kInvalidStop;

  friend bool operator==(const SegmentKey&, const SegmentKey&) = default;
};

struct SegmentKeyHash {
  std::size_t operator()(const SegmentKey& k) const {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.from)) << 32) |
        static_cast<std::uint32_t>(k.to));
  }
};

struct SpanInfo {
  RouteId route = kInvalidRoute;  ///< a route containing the span
  double arc_from = 0.0;
  double arc_to = 0.0;
  double length_m = 0.0;
  double free_speed_kmh = 0.0;  ///< harmonic mean of link free speeds
  std::vector<std::pair<SegmentId, double>> links;  ///< (link, metres on it)
};

class SegmentCatalog {
 public:
  explicit SegmentCatalog(const City& city);

  /// Info for an *adjacent* stop pair, or nullptr.
  const SpanInfo* adjacent(const SegmentKey& key) const;

  /// Info for any ordered pair lying on one route (to after from), possibly
  /// spanning skipped stops; nullopt if no route serves the pair in order.
  std::optional<SpanInfo> span(const SegmentKey& key) const;

  /// Decomposes a valid span into its chain of adjacent segment keys.
  std::vector<SegmentKey> adjacent_chain(const SegmentKey& key) const;

  /// All adjacent segments, each listed once.
  const std::vector<SegmentKey>& adjacent_keys() const { return adjacent_keys_; }

  const City& city() const { return *city_; }

 private:
  SpanInfo make_span(const BusRoute& route, double arc_from, double arc_to) const;
  /// (route, index pair) containing the ordered stop pair, if any.
  std::optional<std::pair<RouteId, std::pair<int, int>>> locate(
      const SegmentKey& key) const;

  const City* city_;
  std::vector<std::vector<StopId>> sequences_;  ///< effective ids per route
  std::unordered_map<SegmentKey, SpanInfo, SegmentKeyHash> adjacent_;
  std::vector<SegmentKey> adjacent_keys_;
};

}  // namespace bussense
