#include "core/admission.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "sensing/trip_signature.h"

namespace bussense {

void AdmissionConfig::validate() const {
  if (min_samples > max_samples) {
    throw std::invalid_argument(
        "AdmissionConfig: min_samples must be <= max_samples");
  }
  if (max_samples == 0) {
    throw std::invalid_argument("AdmissionConfig: max_samples must be > 0");
  }
  if (max_fingerprint_cells == 0) {
    throw std::invalid_argument(
        "AdmissionConfig: max_fingerprint_cells must be > 0");
  }
  if (!(max_out_of_order_s >= 0.0)) {
    throw std::invalid_argument(
        "AdmissionConfig: max_out_of_order_s must be >= 0");
  }
  if (!(max_trip_duration_s > 0.0)) {
    throw std::invalid_argument(
        "AdmissionConfig: max_trip_duration_s must be > 0");
  }
  if (!(max_clock_skew_s >= 0.0)) {
    throw std::invalid_argument(
        "AdmissionConfig: max_clock_skew_s must be >= 0");
  }
  if (skew_state_capacity == 0) {
    throw std::invalid_argument(
        "AdmissionConfig: skew_state_capacity must be > 0");
  }
}

AdmissionController::AdmissionController(AdmissionConfig config)
    : config_(config) {
  config_.validate();
}

void AdmissionController::bind_metrics(MetricsRegistry* registry) {
  if (registry == nullptr) {
    inst_ = Instruments{};
    return;
  }
  inst_.admitted = &registry->counter("ingest.admitted");
  inst_.rejected_duplicate = &registry->counter("ingest.rejected.duplicate");
  inst_.rejected_malformed = &registry->counter("ingest.rejected.malformed");
  inst_.rejected_non_monotone =
      &registry->counter("ingest.rejected.non_monotone");
  inst_.skew_corrected = &registry->counter("ingest.skew_corrected");
}

RejectReason AdmissionController::check_shape(const TripUpload& trip,
                                              SimTime* begin,
                                              SimTime* end) const {
  if (trip.samples.size() < config_.min_samples ||
      trip.samples.size() > config_.max_samples) {
    return RejectReason::kMalformed;
  }
  SimTime lo = std::numeric_limits<double>::infinity();
  SimTime hi = -std::numeric_limits<double>::infinity();
  SimTime prev = -std::numeric_limits<double>::infinity();
  for (const CellularSample& sample : trip.samples) {
    if (!std::isfinite(sample.time)) return RejectReason::kMalformed;
    if (sample.fingerprint.size() > config_.max_fingerprint_cells) {
      return RejectReason::kMalformed;
    }
    if (prev - sample.time > config_.max_out_of_order_s) {
      return RejectReason::kNonMonotone;
    }
    prev = sample.time;
    lo = std::min(lo, sample.time);
    hi = std::max(hi, sample.time);
  }
  if (hi - lo > config_.max_trip_duration_s) return RejectReason::kMalformed;
  *begin = lo;
  *end = hi;
  return RejectReason::kNone;
}

bool AdmissionController::note_signature(std::uint64_t signature) {
  const auto it = seen_.find(signature);
  if (it != seen_.end()) {
    // Refresh recency: a replay storm must not let its own target age out
    // of the window between copies.
    lru_.splice(lru_.begin(), lru_, it->second);
    return false;
  }
  lru_.push_front(signature);
  seen_.emplace(signature, lru_.begin());
  while (seen_.size() > config_.dedup_capacity) {
    seen_.erase(lru_.back());
    lru_.pop_back();
  }
  return true;
}

RejectReason AdmissionController::admit(const TripUpload& trip,
                                        TripUpload& corrected,
                                        const TripUpload*& use,
                                        AdmitInfo* info) {
  use = &trip;
  if (info) *info = AdmitInfo{};
  SimTime begin = 0.0, end = 0.0;
  const RejectReason shape = check_shape(trip, &begin, &end);
  if (shape != RejectReason::kNone) {
    if (shape == RejectReason::kMalformed && inst_.rejected_malformed) {
      inst_.rejected_malformed->inc();
    }
    if (shape == RejectReason::kNonMonotone && inst_.rejected_non_monotone) {
      inst_.rejected_non_monotone->inc();
    }
    return shape;
  }

  const std::lock_guard<std::mutex> lock(mutex_);
  // Dedup on the bytes as uploaded (pre-correction): a retrying phone
  // resends exactly what it sent before, skewed clock included.
  if (config_.dedup_capacity > 0) {
    const std::uint64_t signature = trip_signature(trip);
    if (info) info->signature = signature;
    if (!note_signature(signature)) {
      if (inst_.rejected_duplicate) inst_.rejected_duplicate->inc();
      return RejectReason::kDuplicate;
    }
  }

  if (config_.max_clock_skew_s > 0.0 && have_watermark_) {
    if (skew_offset_s_.size() > config_.skew_state_capacity) {
      skew_offset_s_.clear();  // hostile-id overflow: coarse reset
    }
    double offset = 0.0;
    const auto known = skew_offset_s_.find(trip.participant_id);
    if (known != skew_offset_s_.end()) offset = known->second;
    // Phones upload a trip right after it ends, so with a healthy clock
    // (and any known offset removed) the trip end lands near the
    // watermark. A residual beyond the threshold is fresh skew evidence.
    const double residual = (end - offset) - watermark_;
    if (std::abs(residual) > config_.max_clock_skew_s) offset += residual;
    if (offset != 0.0) {
      skew_offset_s_[trip.participant_id] = offset;
      corrected = trip;
      for (CellularSample& sample : corrected.samples) sample.time -= offset;
      use = &corrected;
      if (info) info->skew_offset_s = offset;
      if (inst_.skew_corrected) inst_.skew_corrected->inc();
    }
  }

  if (inst_.admitted) inst_.admitted->inc();
  return RejectReason::kNone;
}

void AdmissionController::note_replayed(std::uint64_t signature,
                                        std::int32_t participant_id,
                                        double skew_offset_s) {
  const std::lock_guard<std::mutex> lock(mutex_);
  // Signature 0 marks "dedup was off" in the WAL record; a genuine zero
  // hash (p ~ 2^-64) merely loses that one record's dedup entry on replay.
  if (config_.dedup_capacity > 0 && signature != 0) {
    note_signature(signature);
  }
  // admit() only writes the table when the (possibly re-used) offset is
  // non-zero, so replaying recorded non-zero offsets rebuilds it exactly.
  if (skew_offset_s != 0.0) skew_offset_s_[participant_id] = skew_offset_s;
}

AdmissionCheckpoint AdmissionController::export_state() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  AdmissionCheckpoint out;
  // lru_ holds most-recent-first; export oldest-first so restore can
  // replay the recency order with plain push_fronts.
  out.lru_oldest_first.assign(lru_.rbegin(), lru_.rend());
  out.skew_offsets.assign(skew_offset_s_.begin(), skew_offset_s_.end());
  std::sort(out.skew_offsets.begin(), out.skew_offsets.end());
  out.have_watermark = have_watermark_;
  out.watermark = watermark_;
  return out;
}

void AdmissionController::restore_state(const AdmissionCheckpoint& state) {
  const std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  seen_.clear();
  for (const std::uint64_t signature : state.lru_oldest_first) {
    lru_.push_front(signature);
    seen_.emplace(signature, lru_.begin());
  }
  skew_offset_s_.clear();
  for (const auto& [participant, offset] : state.skew_offsets) {
    skew_offset_s_[participant] = offset;
  }
  have_watermark_ = state.have_watermark;
  watermark_ = state.watermark;
}

void AdmissionController::observe_time(SimTime now) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!have_watermark_ || now > watermark_) {
    watermark_ = now;
    have_watermark_ = true;
  }
}

SimTime AdmissionController::watermark() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return have_watermark_ ? watermark_
                         : -std::numeric_limits<double>::infinity();
}

}  // namespace bussense
