#include "core/arrival_predictor.h"

#include <algorithm>
#include <stdexcept>

namespace bussense {

ArrivalPredictor::ArrivalPredictor(const SegmentCatalog& catalog,
                                   ArrivalPredictorConfig config)
    : catalog_(&catalog), config_(config) {}

double ArrivalPredictor::segment_bus_time_s(const SpanInfo& info,
                                            double att_speed_kmh) const {
  const double att_s =
      info.length_m / 1000.0 / std::max(att_speed_kmh, 3.0) * 3600.0;
  const double a = info.length_m / 1000.0 / info.free_speed_kmh * 3600.0;
  const double free_btt =
      TravelEstimator(*catalog_, config_.att)
          .free_bus_time_s(info.length_m, info.free_speed_kmh);
  // Invert Eq. 3: ATT = a + b * (BTT - BTT_free)  =>  BTT = BTT_free +
  // (ATT - a)/b, clamped at free flow.
  return free_btt + std::max(0.0, att_s - a) / config_.att.b;
}

std::vector<ArrivalPrediction> ArrivalPredictor::predict(
    const BusRoute& route, int from_index, SimTime departure,
    const SpeedFusion& fusion, SimTime now) const {
  return predict(
      route, from_index, departure,
      [&fusion](const SegmentKey& key) { return fusion.query(key); }, now);
}

std::vector<ArrivalPrediction> ArrivalPredictor::predict(
    const BusRoute& route, int from_index, SimTime departure,
    const SpeedLookup& speeds, SimTime now) const {
  if (from_index < 0 || from_index + 1 >= static_cast<int>(route.stop_count())) {
    throw std::invalid_argument("ArrivalPredictor: bad from_index");
  }
  const City& city = catalog_->city();
  std::vector<ArrivalPrediction> out;
  SimTime t = departure;
  for (int k = from_index; k + 1 < static_cast<int>(route.stop_count()); ++k) {
    const SegmentKey key{
        city.effective_stop(route.stops()[static_cast<std::size_t>(k)].stop),
        city.effective_stop(
            route.stops()[static_cast<std::size_t>(k) + 1].stop)};
    const SpanInfo* info = catalog_->adjacent(key);
    if (!info) break;  // defensive: catalog covers all adjacent pairs
    ArrivalPrediction p;
    const auto fused = speeds(key);
    if (fused && now - fused->updated_at <= config_.max_estimate_age_s) {
      p.from_live_traffic = true;
      t += segment_bus_time_s(*info, fused->mean_kmh);
    } else {
      t += segment_bus_time_s(*info, info->free_speed_kmh);
    }
    p.stop_index = k + 1;
    p.stop = key.to;
    p.eta = t;
    p.travel_s = t - departure;
    out.push_back(p);
    // Dwell before continuing (the final stop needs no onward dwell).
    t += config_.serve_probability * config_.expected_dwell_s;
  }
  return out;
}

}  // namespace bussense
