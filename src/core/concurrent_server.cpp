#include "core/concurrent_server.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

namespace bussense {

namespace {

// Server ids are handed out once and never reused, so a thread's cached
// slot for a destroyed server is simply never looked up again.
std::atomic<std::uint64_t> g_next_server_id{1};

}  // namespace

ConcurrentTrafficServer::ConcurrentTrafficServer(
    const City& city, StopDatabase database, ServerConfig config,
    ConcurrentServerConfig concurrency)
    : inner_(city, std::move(database), config),
      concurrency_{std::max<std::size_t>(1, concurrency.fusion_stripes),
                   std::max<std::size_t>(1, concurrency.batch_flush_threshold)},
      fusion_(config.fusion, concurrency_.fusion_stripes),
      server_id_(g_next_server_id.fetch_add(1, std::memory_order_relaxed)) {}

ConcurrentTrafficServer::ThreadBatch& ConcurrentTrafficServer::local_batch() {
  // Per-thread cache: server id → this thread's batch slot. The slots
  // themselves are owned by the server (registry), so advance_time() can
  // drain every thread's pending estimates.
  thread_local std::unordered_map<std::uint64_t, ThreadBatch*> t_slots;
  ThreadBatch*& slot = t_slots[server_id_];
  if (slot == nullptr) {
    const std::lock_guard<std::mutex> lock(registry_mutex_);
    batches_.push_back(std::make_unique<ThreadBatch>());
    slot = batches_.back().get();
  }
  return *slot;
}

TrafficServer::TripReport ConcurrentTrafficServer::process_trip(
    const TripUpload& trip) {
  // Lock-free analysis against immutable state...
  TrafficServer::TripReport report = inner_.analyze_trip(trip);
  // ...then buffer the estimates thread-locally; the striped fusion is only
  // touched when a whole batch is ready.
  if (!report.estimates.empty()) {
    ThreadBatch& batch = local_batch();
    std::vector<SpeedEstimate> ready;
    {
      const std::lock_guard<std::mutex> lock(batch.mutex);
      batch.pending.insert(batch.pending.end(), report.estimates.begin(),
                           report.estimates.end());
      if (batch.pending.size() >= concurrency_.batch_flush_threshold) {
        ready.swap(batch.pending);
      }
    }
    if (!ready.empty()) fusion_.add_batch(ready);
  }
  trips_processed_.fetch_add(1, std::memory_order_relaxed);
  return report;
}

void ConcurrentTrafficServer::flush_batches() {
  std::vector<SpeedEstimate> drained;
  {
    const std::lock_guard<std::mutex> registry(registry_mutex_);
    for (const auto& batch : batches_) {
      const std::lock_guard<std::mutex> lock(batch->mutex);
      drained.insert(drained.end(), batch->pending.begin(),
                     batch->pending.end());
      batch->pending.clear();
    }
  }
  if (!drained.empty()) fusion_.add_batch(drained);
}

void ConcurrentTrafficServer::advance_time(SimTime now) {
  flush_batches();
  fusion_.flush_until(now);
}

TrafficMap ConcurrentTrafficServer::snapshot(SimTime now,
                                             double max_age_s) const {
  // Pending batches only hold estimates whose period has not been closed
  // yet; they would not appear in the snapshot even if folded, so no drain
  // is needed here.
  return TrafficMap::snapshot(fusion_, inner_.catalog(), now, max_age_s);
}

}  // namespace bussense
