#include "core/concurrent_server.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "core/epoch_publisher.h"

namespace bussense {

namespace {

// Server ids are handed out once and never reused, so a thread's cached
// slot for a destroyed server is simply never looked up again.
std::atomic<std::uint64_t> g_next_server_id{1};

// The inner server must not open its own WAL on the same directory: the
// manager lives in the concurrent front end.
ServerConfig without_durability(ServerConfig config) {
  config.durability = DurabilityConfig{};
  return config;
}

}  // namespace

void ConcurrentServerConfig::validate() const {
  if (fusion_stripes == 0) {
    throw std::invalid_argument(
        "ConcurrentServerConfig: fusion_stripes must be > 0");
  }
  if (batch_flush_threshold == 0) {
    throw std::invalid_argument(
        "ConcurrentServerConfig: batch_flush_threshold must be > 0");
  }
}

ConcurrentTrafficServer::ConcurrentTrafficServer(
    const City& city, StopDatabase database, ServerConfig config,
    ConcurrentServerConfig concurrency)
    : inner_(city, std::move(database), without_durability(config)),
      concurrency_(concurrency),
      fusion_(config.fusion,
              std::max<std::size_t>(1, concurrency.fusion_stripes)),
      server_id_(g_next_server_id.fetch_add(1, std::memory_order_relaxed)) {
  concurrency_.validate();
  if (config.durability.enabled) {
    config.durability.validate();
    durability_ = std::make_unique<DurabilityManager>(config.durability, 1);
    if (config.obs.enabled) {
      durability_->bind_metrics(&inner_.metrics_registry());
    }
  }
  if (config.obs.enabled) {
    MetricsRegistry& reg = inner_.metrics_registry();
    inst_.trips = &reg.counter("pipeline.trips");
    inst_.trip_s = &reg.histogram("pipeline.trip_s");
    inst_.fold_s = &reg.histogram("fusion.fold_s");
  }
}

ConcurrentTrafficServer::ThreadBatch& ConcurrentTrafficServer::local_batch() {
  // Per-thread cache: server id → this thread's batch slot. The slots
  // themselves are owned by the server (registry), so advance_time() can
  // drain every thread's pending estimates.
  thread_local std::unordered_map<std::uint64_t, ThreadBatch*> t_slots;
  ThreadBatch*& slot = t_slots[server_id_];
  if (slot == nullptr) {
    const std::lock_guard<std::mutex> lock(registry_mutex_);
    batches_.push_back(std::make_unique<ThreadBatch>());
    slot = batches_.back().get();
  }
  return *slot;
}

TripReport ConcurrentTrafficServer::process_trip(const TripUpload& trip) {
  const double start = inst_.trip_s ? monotonic_time_s() : 0.0;
  if (durability_ && (!opened_.load(std::memory_order_acquire) ||
                      closed_.load(std::memory_order_acquire))) {
    TripReport rejected;
    rejected.outcome = IngestOutcome::kRejected;
    rejected.reject_reason = RejectReason::kShutdown;
    return rejected;
  }
  // Admission first, through the inner server's shared controller, so
  // dedup/skew state is pipeline-wide whichever front end receives the
  // upload. The controller serialises its own state; the analysis below
  // stays lock-free.
  const TripUpload* use = &trip;
  TripUpload corrected;
  AdmitInfo info;
  if (AdmissionController* admission = inner_.admission()) {
    const RejectReason why = admission->admit(trip, corrected, use, &info);
    if (why != RejectReason::kNone) {
      TripReport rejected;
      rejected.outcome = IngestOutcome::kRejected;
      rejected.reject_reason = why;
      return rejected;
    }
  }
  // Write-ahead: the admitted upload is durable before its estimates can
  // reach any batch (the writer serialises concurrent appends).
  if (durability_) durability_->append_trip(0, *use, info);
  // Lock-free analysis against immutable state...
  TripReport report = inner_.analyze_trip(*use);
  // ...then buffer the estimates thread-locally; the striped fusion is only
  // touched when a whole batch is ready.
  if (!report.estimates.empty()) {
    ThreadBatch& batch = local_batch();
    std::vector<SpeedEstimate> ready;
    {
      const std::lock_guard<std::mutex> lock(batch.mutex);
      batch.pending.insert(batch.pending.end(), report.estimates.begin(),
                           report.estimates.end());
      if (batch.pending.size() >= concurrency_.batch_flush_threshold) {
        ready.swap(batch.pending);
      }
    }
    if (!ready.empty()) fold_batch(ready);
  }
  trips_processed_.fetch_add(1, std::memory_order_relaxed);
  if (inst_.trip_s) {
    inst_.trip_s->record(monotonic_time_s() - start);
    inst_.trips->inc();
  }
  return report;
}

void ConcurrentTrafficServer::fold_batch(
    const std::vector<SpeedEstimate>& batch) {
  const double start = inst_.fold_s ? monotonic_time_s() : 0.0;
  fusion_.add_batch(batch);
  if (inst_.fold_s) inst_.fold_s->record(monotonic_time_s() - start);
}

void ConcurrentTrafficServer::flush_batches() {
  std::vector<SpeedEstimate> drained;
  {
    const std::lock_guard<std::mutex> registry(registry_mutex_);
    for (const auto& batch : batches_) {
      const std::lock_guard<std::mutex> lock(batch->mutex);
      drained.insert(drained.end(), batch->pending.begin(),
                     batch->pending.end());
      batch->pending.clear();
    }
  }
  if (!drained.empty()) fold_batch(drained);
}

void ConcurrentTrafficServer::advance_time(SimTime now) {
  if (durability_ && opened_.load(std::memory_order_acquire) &&
      !closed_.load(std::memory_order_acquire)) {
    durability_->append_time_mark(now);
  }
  if (AdmissionController* admission = inner_.admission()) {
    admission->observe_time(now);
  }
  flush_batches();
  fusion_.flush_until(now);
}

void ConcurrentTrafficServer::apply_recovered(const WalRecord& record,
                                              RecoveryReport* report) {
  if (record.type == WalRecordType::kTimeMark) {
    // Watermark only; fusion periods are never closed during replay.
    if (AdmissionController* admission = inner_.admission()) {
      admission->observe_time(record.mark_time);
    }
    ++report->replayed_time_marks;
    return;
  }
  if (AdmissionController* admission = inner_.admission()) {
    admission->note_replayed(record.signature, record.trip.participant_id,
                             record.skew_offset_s);
  }
  const TripReport trip_report = inner_.analyze_trip(record.trip);
  if (!trip_report.estimates.empty()) fold_batch(trip_report.estimates);
  trips_processed_.fetch_add(1, std::memory_order_relaxed);
  ++report->replayed_trips;
}

RecoveryReport ConcurrentTrafficServer::open() {
  RecoveryReport report;
  if (!durability_) {
    opened_.store(true, std::memory_order_release);
    return report;
  }
  report.durable = true;
  DurabilityManager::Recovery recovery = durability_->open();
  if (recovery.checkpoint) {
    report.checkpoint_loaded = true;
    report.checkpoint_id = recovery.checkpoint->id;
    fusion_.restore_state(recovery.checkpoint->state.fusion);
    trips_processed_.store(recovery.checkpoint->state.trips_processed,
                           std::memory_order_relaxed);
    if (AdmissionController* admission = inner_.admission()) {
      if (!recovery.checkpoint->state.admission.empty()) {
        admission->restore_state(recovery.checkpoint->state.admission.front());
      }
    }
  }
  for (const WalRecord& record : recovery.replay.front()) {
    apply_recovered(record, &report);
  }
  report.duplicate_records = recovery.duplicate_records;
  report.truncated_tail_bytes = recovery.truncated_tail_bytes;
  report.recovered_trips_per_segment = std::move(recovery.recovered_trips);
  opened_.store(true, std::memory_order_release);
  return report;
}

std::uint64_t ConcurrentTrafficServer::checkpoint() {
  if (!durability_ || !opened_.load(std::memory_order_acquire) ||
      closed_.load(std::memory_order_acquire)) {
    return 0;
  }
  // Quiescent by contract; fold straggler batches so the exported fusion
  // state covers everything the WAL covers.
  flush_batches();
  CheckpointState state;
  state.trips_processed = trips_processed_.load(std::memory_order_relaxed);
  state.fusion = fusion_.export_state();
  if (AdmissionController* admission = inner_.admission()) {
    state.admission.push_back(admission->export_state());
  }
  return durability_->save_checkpoint(std::move(state));
}

void ConcurrentTrafficServer::close() {
  if (durability_ && opened_.load(std::memory_order_acquire) &&
      !closed_.load(std::memory_order_acquire)) {
    durability_->close();
  }
  closed_.store(true, std::memory_order_release);
}

TrafficMap ConcurrentTrafficServer::snapshot(SimTime now,
                                             double max_age_s) const {
  // Pending batches only hold estimates whose period has not been closed
  // yet; they would not appear in the snapshot even if folded, so no drain
  // is needed here.
  return TrafficMap::snapshot(fusion_, inner_.catalog(), now, max_age_s);
}

std::uint64_t ConcurrentTrafficServer::publish_epoch(EpochPublisher& publisher,
                                                     SimTime now,
                                                     double max_age_s) const {
  // Same visibility rule as snapshot(): pending batches hold only
  // not-yet-closed periods, so no drain is needed.
  return publisher.publish_from(fusion_, now, max_age_s);
}

}  // namespace bussense
