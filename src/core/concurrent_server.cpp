#include "core/concurrent_server.h"

namespace bussense {

ConcurrentTrafficServer::ConcurrentTrafficServer(const City& city,
                                                 StopDatabase database,
                                                 ServerConfig config)
    : inner_(city, std::move(database), config) {}

TrafficServer::TripReport ConcurrentTrafficServer::process_trip(
    const TripUpload& trip) {
  // Lock-free analysis against immutable state...
  TrafficServer::TripReport report = inner_.analyze_trip(trip);
  // ...then a short critical section to fold the results in.
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    inner_.ingest(report.estimates);
    ++trips_processed_;
  }
  return report;
}

void ConcurrentTrafficServer::advance_time(SimTime now) {
  const std::lock_guard<std::mutex> lock(mutex_);
  inner_.advance_time(now);
}

TrafficMap ConcurrentTrafficServer::snapshot(SimTime now,
                                             double max_age_s) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return inner_.snapshot(now, max_age_s);
}

std::uint64_t ConcurrentTrafficServer::trips_processed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return trips_processed_;
}

}  // namespace bussense
