#include "core/ingest_service.h"

#include <stdexcept>
#include <utility>

namespace bussense {

void IngestServiceConfig::validate() const {
  if (queue_capacity == 0) {
    throw std::invalid_argument(
        "IngestServiceConfig: queue_capacity must be > 0");
  }
  if (backpressure == Backpressure::kBlock && workers == 0) {
    throw std::invalid_argument(
        "IngestServiceConfig: kBlock with workers == 0 would deadlock every "
        "enqueue against a full queue; use kReject/kDropOldest in manual "
        "mode");
  }
  concurrency.validate();
}

IngestService::IngestService(const City& city, StopDatabase database,
                             ServerConfig config, IngestServiceConfig service)
    : backend_(city, std::move(database), config, service.concurrency),
      service_(service) {
  service_.validate();
  if (config.obs.enabled) {
    MetricsRegistry& reg = backend_.metrics_registry();
    inst_.enqueued = &reg.counter("ingest.enqueued");
    inst_.processed = &reg.counter("ingest.processed");
    inst_.rejected_queue_full = &reg.counter("ingest.rejected_queue_full");
    inst_.rejected_shutdown = &reg.counter("ingest.rejected_shutdown");
    inst_.dropped_oldest = &reg.counter("ingest.dropped_oldest");
    inst_.worker_errors = &reg.counter("ingest.worker_errors");
    inst_.queue_latency_s = &reg.histogram("ingest.queue_latency_s");
    inst_.queue_depth = &reg.gauge("ingest.queue_depth");
  }
  if (service_.workers > 0) {
    pool_ = std::make_unique<ThreadPool>(
        static_cast<unsigned>(service_.workers));
    coordinator_ = std::thread([this] {
      // One long parallel_for parks every pool thread (the coordinator
      // included) in the drain loop until shutdown closes the queue.
      try {
        pool_->parallel_for(service_.workers, [this](std::size_t) {
          worker_loop();
        });
      } catch (...) {
        // worker_loop() catches per-item failures; anything reaching here
        // (allocation failure in the pool machinery) only ends the loop
        // early — shutdown() still drains on the caller's thread.
      }
    });
  }
}

IngestService::~IngestService() { shutdown(); }

TripReport IngestService::process_trip(const TripUpload& trip) {
  TripReport report;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!closed_ &&
        service_.backpressure == IngestServiceConfig::Backpressure::kBlock) {
      not_full_.wait(lock, [&] {
        return closed_ || queue_.size() < service_.queue_capacity;
      });
    }
    if (closed_) {
      report.outcome = IngestOutcome::kRejected;
      report.reject_reason = RejectReason::kShutdown;
      if (inst_.rejected_shutdown) inst_.rejected_shutdown->inc();
      return report;
    }
    if (queue_.size() >= service_.queue_capacity) {
      switch (service_.backpressure) {
        case IngestServiceConfig::Backpressure::kBlock:
          break;  // unreachable: the wait above guarantees a slot
        case IngestServiceConfig::Backpressure::kReject:
          report.outcome = IngestOutcome::kRejected;
          report.reject_reason = RejectReason::kQueueFull;
          if (inst_.rejected_queue_full) inst_.rejected_queue_full->inc();
          return report;
        case IngestServiceConfig::Backpressure::kDropOldest:
          queue_.pop_front();
          if (inst_.dropped_oldest) inst_.dropped_oldest->inc();
          break;
      }
    }
    queue_.push_back(Item{trip, inst_.queue_latency_s ? monotonic_time_s()
                                                      : 0.0});
    if (inst_.queue_depth) {
      inst_.queue_depth->set(static_cast<double>(queue_.size()));
    }
  }
  if (inst_.enqueued) inst_.enqueued->inc();
  not_empty_.notify_one();
  report.outcome = IngestOutcome::kQueued;
  return report;
}

IngestService::Item IngestService::pop_locked(
    std::unique_lock<std::mutex>& lock) {
  Item item = std::move(queue_.front());
  queue_.pop_front();
  ++in_flight_;
  if (inst_.queue_depth) {
    inst_.queue_depth->set(static_cast<double>(queue_.size()));
  }
  lock.unlock();
  not_full_.notify_one();
  return item;
}

void IngestService::process_item(Item& item) {
  try {
    const TripReport report = backend_.process_trip(item.trip);
    // Admission rejections (duplicate/malformed/skew bounds) surface here
    // rather than at enqueue time — the queued path admits on the worker.
    // They are already counted under ingest.rejected.* by the controller,
    // so ingest.processed keeps meaning "ran the full pipeline".
    if (report.accepted() && inst_.processed) inst_.processed->inc();
    if (inst_.queue_latency_s) {
      inst_.queue_latency_s->record(monotonic_time_s() - item.enqueued_at);
    }
  } catch (...) {
    // A malformed upload must not take a worker down; the error count is
    // the operator's signal.
    if (inst_.worker_errors) inst_.worker_errors->inc();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  --in_flight_;
  if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
}

void IngestService::worker_loop() {
  for (;;) {
    Item item;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_empty_.wait(lock, [&] { return closed_ || !queue_.empty(); });
      if (queue_.empty()) return;  // closed and fully drained
      item = pop_locked(lock);
    }
    process_item(item);
  }
}

std::size_t IngestService::process_queued(std::size_t max_items) {
  std::size_t done = 0;
  while (done < max_items) {
    Item item;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (queue_.empty()) break;
      item = pop_locked(lock);
    }
    process_item(item);
    ++done;
  }
  return done;
}

void IngestService::drain() {
  if (service_.workers == 0) {
    process_queued(static_cast<std::size_t>(-1));
    return;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [&] { return queue_.empty() && in_flight_ == 0; });
}

void IngestService::advance_time(SimTime now) {
  drain();
  backend_.advance_time(now);
}

void IngestService::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  if (coordinator_.joinable()) coordinator_.join();
  // Manual mode (or a pool that died early): finish the queue here.
  process_queued(static_cast<std::size_t>(-1));
  // No accepted estimate may be stranded in a worker's thread batch.
  backend_.flush_batches();
}

TrafficMap IngestService::snapshot(SimTime now, double max_age_s) const {
  return backend_.snapshot(now, max_age_s);
}

std::size_t IngestService::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

bool IngestService::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

}  // namespace bussense
