#include "core/ingest_service.h"

#include <chrono>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "common/rng.h"
#include "core/epoch_publisher.h"

namespace bussense {

void IngestServiceConfig::validate() const {
  if (queue_capacity == 0) {
    throw std::invalid_argument(
        "IngestServiceConfig: queue_capacity must be > 0");
  }
  if (backpressure == Backpressure::kBlock && workers == 0) {
    throw std::invalid_argument(
        "IngestServiceConfig: kBlock with workers == 0 would deadlock every "
        "enqueue against a full queue; use kReject/kDropOldest in manual "
        "mode");
  }
  concurrency.validate();
}

IngestService::IngestService(const City& city, StopDatabase database,
                             ServerConfig config, IngestServiceConfig service)
    : backend_(city, std::move(database), config, service.concurrency),
      service_(service),
      durable_(config.durability.enabled) {
  service_.validate();
  if (config.obs.enabled) {
    MetricsRegistry& reg = backend_.metrics_registry();
    inst_.enqueued = &reg.counter("ingest.enqueued");
    inst_.processed = &reg.counter("ingest.processed");
    inst_.rejected_queue_full = &reg.counter("ingest.rejected_queue_full");
    inst_.rejected_shutdown = &reg.counter("ingest.rejected_shutdown");
    inst_.dropped_oldest = &reg.counter("ingest.dropped_oldest");
    inst_.worker_errors = &reg.counter("ingest.worker_errors");
    inst_.queue_latency_s = &reg.histogram("ingest.queue_latency_s");
    inst_.queue_depth = &reg.gauge("ingest.queue_depth");
  }
  if (service_.workers > 0) {
    pool_ = std::make_unique<ThreadPool>(
        static_cast<unsigned>(service_.workers));
    coordinator_ = std::thread([this] {
      // One long parallel_for parks every pool thread (the coordinator
      // included) in the drain loop until shutdown closes the queue.
      try {
        pool_->parallel_for(service_.workers, [this](std::size_t) {
          worker_loop();
        });
      } catch (...) {
        // worker_loop() catches per-item failures; anything reaching here
        // (allocation failure in the pool machinery) only ends the loop
        // early — shutdown() still drains on the caller's thread.
      }
    });
  }
}

IngestService::~IngestService() { shutdown(); }

TripReport IngestService::process_trip(const TripUpload& trip) {
  TripReport report;
  if (durable_ && (!lifecycle_open_.load(std::memory_order_acquire) ||
                   lifecycle_closed_.load(std::memory_order_acquire))) {
    report.outcome = IngestOutcome::kRejected;
    report.reject_reason = RejectReason::kShutdown;
    if (inst_.rejected_shutdown) inst_.rejected_shutdown->inc();
    return report;
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!closed_ &&
        service_.backpressure == IngestServiceConfig::Backpressure::kBlock) {
      not_full_.wait(lock, [&] {
        return closed_ || queue_.size() < service_.queue_capacity;
      });
    }
    if (closed_) {
      report.outcome = IngestOutcome::kRejected;
      report.reject_reason = RejectReason::kShutdown;
      if (inst_.rejected_shutdown) inst_.rejected_shutdown->inc();
      return report;
    }
    if (queue_.size() >= service_.queue_capacity) {
      switch (service_.backpressure) {
        case IngestServiceConfig::Backpressure::kBlock:
          break;  // unreachable: the wait above guarantees a slot
        case IngestServiceConfig::Backpressure::kReject:
          report.outcome = IngestOutcome::kRejected;
          report.reject_reason = RejectReason::kQueueFull;
          if (inst_.rejected_queue_full) inst_.rejected_queue_full->inc();
          return report;
        case IngestServiceConfig::Backpressure::kDropOldest:
          queue_.pop_front();
          if (inst_.dropped_oldest) inst_.dropped_oldest->inc();
          break;
      }
    }
    queue_.push_back(Item{trip, inst_.queue_latency_s ? monotonic_time_s()
                                                      : 0.0});
    if (inst_.queue_depth) {
      inst_.queue_depth->set(static_cast<double>(queue_.size()));
    }
  }
  if (inst_.enqueued) inst_.enqueued->inc();
  not_empty_.notify_one();
  report.outcome = IngestOutcome::kQueued;
  return report;
}

IngestService::Item IngestService::pop_locked(
    std::unique_lock<std::mutex>& lock) {
  Item item = std::move(queue_.front());
  queue_.pop_front();
  ++in_flight_;
  if (inst_.queue_depth) {
    inst_.queue_depth->set(static_cast<double>(queue_.size()));
  }
  lock.unlock();
  not_full_.notify_one();
  return item;
}

void IngestService::process_item(Item& item) {
  try {
    const TripReport report = backend_.process_trip(item.trip);
    // Admission rejections (duplicate/malformed/skew bounds) surface here
    // rather than at enqueue time — the queued path admits on the worker.
    // They are already counted under ingest.rejected.* by the controller,
    // so ingest.processed keeps meaning "ran the full pipeline".
    if (report.accepted() && inst_.processed) inst_.processed->inc();
    if (inst_.queue_latency_s) {
      inst_.queue_latency_s->record(monotonic_time_s() - item.enqueued_at);
    }
  } catch (...) {
    // A malformed upload must not take a worker down; the error count is
    // the operator's signal.
    if (inst_.worker_errors) inst_.worker_errors->inc();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  --in_flight_;
  if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
}

void IngestService::worker_loop() {
  for (;;) {
    Item item;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_empty_.wait(lock, [&] { return closed_ || !queue_.empty(); });
      if (queue_.empty()) return;  // closed and fully drained
      item = pop_locked(lock);
    }
    process_item(item);
  }
}

std::size_t IngestService::process_queued(std::size_t max_items) {
  std::size_t done = 0;
  while (done < max_items) {
    Item item;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (queue_.empty()) break;
      item = pop_locked(lock);
    }
    process_item(item);
    ++done;
  }
  return done;
}

void IngestService::drain() {
  if (service_.workers == 0) {
    process_queued(static_cast<std::size_t>(-1));
    return;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [&] { return queue_.empty() && in_flight_ == 0; });
}

void IngestService::advance_time(SimTime now) {
  drain();
  backend_.advance_time(now);
}

RecoveryReport IngestService::open() {
  RecoveryReport report = backend_.open();
  lifecycle_open_.store(true, std::memory_order_release);
  return report;
}

std::uint64_t IngestService::checkpoint() {
  drain();
  return backend_.checkpoint();
}

void IngestService::close() {
  drain();
  backend_.close();
  lifecycle_closed_.store(true, std::memory_order_release);
}

void IngestService::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  if (coordinator_.joinable()) coordinator_.join();
  // Manual mode (or a pool that died early): finish the queue here.
  process_queued(static_cast<std::size_t>(-1));
  // No accepted estimate may be stranded in a worker's thread batch.
  backend_.flush_batches();
}

TrafficMap IngestService::snapshot(SimTime now, double max_age_s) const {
  return backend_.snapshot(now, max_age_s);
}

std::uint64_t IngestService::publish_epoch(EpochPublisher& publisher,
                                           SimTime now,
                                           double max_age_s) const {
  return backend_.publish_epoch(publisher, now, max_age_s);
}

std::size_t IngestService::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

bool IngestService::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

// --------------------------------------------------------- sharded service

namespace {

// Service ids are handed out once and never reused, so a thread's cached
// lane slot for a destroyed service is simply never looked up again.
std::atomic<std::uint64_t> g_next_sharded_service_id{1};

// A producer blocked on a full ring (or an idle consumer) escalates from
// yielding to short sleeps; on a loaded machine the ring turns over long
// before the sleep tier is reached.
struct Backoff {
  std::size_t spins = 0;
  void pause() {
    if (++spins < 64) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  void reset() { spins = 0; }
};

ServerConfig sharded_backend_config(ServerConfig config) {
  // The shards own admission (partition-local dedup/skew state) and the
  // service owns durability (one WAL segment per shard); the backend must
  // not run a second controller or open a second log on the directory.
  config.admission.enabled = false;
  config.durability = DurabilityConfig{};
  return config;
}

}  // namespace

void ShardedIngestConfig::validate() const {
  if (shards == 0) {
    throw std::invalid_argument("ShardedIngestConfig: shards must be > 0");
  }
  if (ring_capacity == 0) {
    throw std::invalid_argument(
        "ShardedIngestConfig: ring_capacity must be > 0");
  }
  if (max_producer_lanes == 0) {
    throw std::invalid_argument(
        "ShardedIngestConfig: max_producer_lanes must be > 0");
  }
  concurrency.validate();
}

ShardedIngestService::ShardedIngestService(const City& city,
                                           StopDatabase database,
                                           ServerConfig config,
                                           ShardedIngestConfig sharding)
    : backend_(city, std::move(database), sharded_backend_config(config),
               sharding.concurrency),
      sharding_(sharding),
      service_id_(
          g_next_sharded_service_id.fetch_add(1, std::memory_order_relaxed)) {
  sharding_.validate();
  if (config.durability.enabled) {
    config.durability.validate();
    durability_ =
        std::make_unique<DurabilityManager>(config.durability, sharding_.shards);
    if (config.obs.enabled) {
      durability_->bind_metrics(&backend_.metrics_registry());
    }
  }
  // The backend constructor validated the full ServerConfig (admission
  // bounds included); the per-shard controllers below re-use it as given.
  shards_.reserve(sharding_.shards);
  for (std::size_t i = 0; i < sharding_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->index = i;
    shard->lanes.reserve(sharding_.max_producer_lanes);
    for (std::size_t lane = 0; lane < sharding_.max_producer_lanes; ++lane) {
      shard->lanes.push_back(
          std::make_unique<SpscRing<TripUpload>>(sharding_.ring_capacity));
    }
    shard->registry = std::make_unique<MetricsRegistry>();
    if (config.admission.enabled) {
      shard->admission =
          std::make_unique<AdmissionController>(config.admission);
      if (config.obs.enabled) {
        shard->admission->bind_metrics(shard->registry.get());
      }
    }
    if (config.obs.enabled) {
      MetricsRegistry& reg = *shard->registry;
      shard->inst.enqueued = &reg.counter("ingest.shard.enqueued");
      shard->inst.processed = &reg.counter("ingest.shard.processed");
      shard->inst.rejected_ring_full =
          &reg.counter("ingest.shard.rejected_ring_full");
      shard->inst.rejected_shutdown =
          &reg.counter("ingest.shard.rejected_shutdown");
      shard->inst.overflowed = &reg.counter("ingest.shard.overflowed");
      shard->inst.worker_errors = &reg.counter("ingest.shard.worker_errors");
    }
    shards_.push_back(std::move(shard));
  }
  for (auto& shard : shards_) {
    Shard* s = shard.get();
    s->consumer = std::thread([this, s] { shard_loop(*s); });
  }
}

ShardedIngestService::~ShardedIngestService() { shutdown(); }

std::size_t ShardedIngestService::shard_of(std::int32_t participant_id) const {
  // Cast through uint32 so negative ids do not sign-extend; mix64 spreads
  // consecutive ids across shards evenly and identically on every run.
  const std::uint64_t key =
      mix64(static_cast<std::uint64_t>(static_cast<std::uint32_t>(participant_id)));
  return static_cast<std::size_t>(key % shards_.size());
}

std::size_t ShardedIngestService::producer_lane() {
  // Per-thread cache: service id → this thread's lane slot. Slots are
  // handed out in registration order; threads past max_producer_lanes get
  // the sentinel and use the overflow queue.
  thread_local std::unordered_map<std::uint64_t, std::size_t> t_lanes;
  auto [it, inserted] = t_lanes.try_emplace(service_id_, 0);
  if (inserted) {
    it->second = next_producer_slot_.fetch_add(1, std::memory_order_relaxed);
  }
  return it->second;
}

TripReport ShardedIngestService::process_trip(const TripUpload& trip) {
  TripReport report;
  pushing_.fetch_add(1, std::memory_order_acq_rel);
  Shard& shard = *shards_[shard_of(trip.participant_id)];
  const auto reject = [&](RejectReason why, Counter* counter) {
    pushing_.fetch_sub(1, std::memory_order_acq_rel);
    report.outcome = IngestOutcome::kRejected;
    report.reject_reason = why;
    if (counter) counter->inc();
    return report;
  };
  if (closed_.load(std::memory_order_acquire)) {
    return reject(RejectReason::kShutdown, shard.inst.rejected_shutdown);
  }
  if (durability_ && (!lifecycle_open_.load(std::memory_order_acquire) ||
                      lifecycle_closed_.load(std::memory_order_acquire))) {
    return reject(RejectReason::kShutdown, shard.inst.rejected_shutdown);
  }

  const std::size_t lane = producer_lane();
  if (lane < shard.lanes.size()) {
    SpscRing<TripUpload>& ring = *shard.lanes[lane];
    TripUpload copy = trip;
    if (!ring.try_push(std::move(copy))) {
      if (sharding_.backpressure == ShardedIngestConfig::Backpressure::kReject) {
        return reject(RejectReason::kQueueFull, shard.inst.rejected_ring_full);
      }
      Backoff backoff;
      for (;;) {
        if (closed_.load(std::memory_order_acquire)) {
          return reject(RejectReason::kShutdown, shard.inst.rejected_shutdown);
        }
        // try_push leaves `copy` untouched on failure, so retrying the
        // move is safe.
        if (ring.try_push(std::move(copy))) break;
        backoff.pause();
      }
    }
  } else {
    // Overflow lane: bounded, mutex-guarded — correctness identical, just
    // slower. Only threads beyond max_producer_lanes land here.
    Backoff backoff;
    for (;;) {
      if (closed_.load(std::memory_order_acquire)) {
        return reject(RejectReason::kShutdown, shard.inst.rejected_shutdown);
      }
      {
        std::lock_guard<std::mutex> lock(shard.overflow_mutex);
        if (shard.overflow.size() < sharding_.ring_capacity) {
          shard.overflow.push_back(trip);
          break;
        }
      }
      if (sharding_.backpressure == ShardedIngestConfig::Backpressure::kReject) {
        return reject(RejectReason::kQueueFull, shard.inst.rejected_ring_full);
      }
      backoff.pause();
    }
    if (shard.inst.overflowed) shard.inst.overflowed->inc();
  }

  if (shard.inst.enqueued) shard.inst.enqueued->inc();
  pushing_.fetch_sub(1, std::memory_order_acq_rel);
  report.outcome = IngestOutcome::kQueued;
  return report;
}

void ShardedIngestService::process_one(Shard& shard, const TripUpload& trip) {
  try {
    const TripUpload* use = &trip;
    TripUpload corrected;
    AdmitInfo info;
    if (shard.admission) {
      const RejectReason why =
          shard.admission->admit(trip, corrected, use, &info);
      if (why != RejectReason::kNone) return;  // verdict counted by the
                                               // controller in the shard
                                               // registry
    }
    // Write-ahead into the shard's own segment; only this consumer thread
    // appends to it, so segment order == the shard's processing order.
    if (durability_) durability_->append_trip(shard.index, *use, info);
    backend_.process_trip(*use);
    if (shard.inst.processed) shard.inst.processed->inc();
  } catch (...) {
    // A hostile upload must not take the shard's consumer down.
    if (shard.inst.worker_errors) shard.inst.worker_errors->inc();
  }
}

std::size_t ShardedIngestService::drain_shard_once(Shard& shard) {
  std::size_t done = 0;
  TripUpload trip;
  for (auto& lane : shard.lanes) {
    // Bounded burst per lane so one chatty producer cannot starve the rest.
    for (int burst = 0; burst < 64; ++burst) {
      if (!lane->try_pop(trip)) break;
      process_one(shard, trip);
      ++done;
    }
  }
  for (;;) {
    bool got = false;
    {
      std::lock_guard<std::mutex> lock(shard.overflow_mutex);
      if (!shard.overflow.empty()) {
        trip = std::move(shard.overflow.front());
        shard.overflow.pop_front();
        got = true;
      }
    }
    if (!got) break;
    process_one(shard, trip);
    ++done;
  }
  return done;
}

bool ShardedIngestService::shard_pending(const Shard& shard) const {
  for (const auto& lane : shard.lanes) {
    if (!lane->empty()) return true;
  }
  std::lock_guard<std::mutex> lock(shard.overflow_mutex);
  return !shard.overflow.empty();
}

void ShardedIngestService::shard_loop(Shard& shard) {
  Backoff backoff;
  for (;;) {
    shard.busy.store(true, std::memory_order_release);
    const std::size_t done = drain_shard_once(shard);
    shard.busy.store(false, std::memory_order_release);
    if (done > 0) {
      backoff.reset();
      continue;
    }
    if (shard_pending(shard)) continue;
    if (closed_.load(std::memory_order_acquire) &&
        pushing_.load(std::memory_order_acquire) == 0 &&
        !shard_pending(shard)) {
      return;
    }
    backoff.pause();
  }
}

void ShardedIngestService::drain() {
  Backoff backoff;
  for (;;) {
    bool pending = pushing_.load(std::memory_order_acquire) != 0;
    for (const auto& shard : shards_) {
      // Rings before busy: seeing a ring go empty happens-after the
      // consumer raised its busy flag, so a popped-but-unprocessed upload
      // always shows up in one of the two checks.
      if (shard_pending(*shard) ||
          shard->busy.load(std::memory_order_acquire)) {
        pending = true;
        break;
      }
    }
    if (!pending) return;
    backoff.pause();
  }
}

void ShardedIngestService::advance_time(SimTime now) {
  drain();
  if (durability_ && lifecycle_open_.load(std::memory_order_acquire) &&
      !lifecycle_closed_.load(std::memory_order_acquire)) {
    durability_->append_time_mark(now);
  }
  for (auto& shard : shards_) {
    if (shard->admission) shard->admission->observe_time(now);
  }
  backend_.advance_time(now);
}

RecoveryReport ShardedIngestService::open() {
  RecoveryReport report;
  if (!durability_) {
    lifecycle_open_.store(true, std::memory_order_release);
    return report;
  }
  report.durable = true;
  DurabilityManager::Recovery recovery = durability_->open();
  if (recovery.checkpoint) {
    report.checkpoint_loaded = true;
    report.checkpoint_id = recovery.checkpoint->id;
    backend_.restore_fusion(recovery.checkpoint->state.fusion);
    backend_.set_trips_processed(recovery.checkpoint->state.trips_processed);
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      if (shards_[i]->admission &&
          i < recovery.checkpoint->state.admission.size()) {
        shards_[i]->admission->restore_state(
            recovery.checkpoint->state.admission[i]);
      }
    }
  }
  // Shard-by-shard, seq order within each shard. Fusion periods are never
  // closed during replay, so this sequential order yields the same fused
  // map as the original interleaving (period sums are order-insensitive).
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    for (const WalRecord& record : recovery.replay[i]) {
      if (record.type == WalRecordType::kTimeMark) {
        if (shards_[i]->admission) {
          shards_[i]->admission->observe_time(record.mark_time);
        }
        ++report.replayed_time_marks;
        continue;
      }
      if (shards_[i]->admission) {
        shards_[i]->admission->note_replayed(
            record.signature, record.trip.participant_id,
            record.skew_offset_s);
      }
      backend_.process_trip(record.trip);
      ++report.replayed_trips;
    }
  }
  report.duplicate_records = recovery.duplicate_records;
  report.truncated_tail_bytes = recovery.truncated_tail_bytes;
  report.recovered_trips_per_segment = std::move(recovery.recovered_trips);
  lifecycle_open_.store(true, std::memory_order_release);
  return report;
}

std::uint64_t ShardedIngestService::checkpoint() {
  if (!durability_ || !lifecycle_open_.load(std::memory_order_acquire) ||
      lifecycle_closed_.load(std::memory_order_acquire)) {
    return 0;
  }
  drain();
  backend_.flush_batches();
  CheckpointState state;
  state.trips_processed = backend_.trips_processed();
  state.fusion = backend_.export_fusion();
  for (const auto& shard : shards_) {
    if (shard->admission) {
      state.admission.push_back(shard->admission->export_state());
    }
  }
  return durability_->save_checkpoint(std::move(state));
}

void ShardedIngestService::close() {
  if (durability_ && lifecycle_open_.load(std::memory_order_acquire) &&
      !lifecycle_closed_.load(std::memory_order_acquire)) {
    drain();
    durability_->close();
  }
  lifecycle_closed_.store(true, std::memory_order_release);
}

void ShardedIngestService::shutdown() {
  closed_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    if (shard->consumer.joinable()) shard->consumer.join();
  }
  // The exit protocol guarantees empty rings, but sweep once more on the
  // caller's thread in case a consumer died early.
  for (auto& shard : shards_) {
    while (drain_shard_once(*shard) > 0) {
    }
  }
  // No accepted estimate may be stranded in a consumer's thread batch.
  backend_.flush_batches();
}

TrafficMap ShardedIngestService::snapshot(SimTime now, double max_age_s) const {
  return backend_.snapshot(now, max_age_s);
}

std::uint64_t ShardedIngestService::publish_epoch(EpochPublisher& publisher,
                                                  SimTime now,
                                                  double max_age_s) const {
  return backend_.publish_epoch(publisher, now, max_age_s);
}

MetricsSnapshot ShardedIngestService::shard_metrics() const {
  MetricsRegistry merged;
  for (const auto& shard : shards_) merged.merge(*shard->registry);
  return merged.snapshot();
}

std::size_t ShardedIngestService::queue_depth() const {
  std::size_t depth = 0;
  for (const auto& shard : shards_) {
    for (const auto& lane : shard->lanes) depth += lane->size();
    std::lock_guard<std::mutex> lock(shard->overflow_mutex);
    depth += shard->overflow.size();
  }
  return depth;
}

}  // namespace bussense
