// GPS-trace baseline tracker (ablation A3).
//
// The alternative the paper argues against: track the bus with periodic GPS
// fixes instead of cellular beep samples. Fixes are map-matched onto the
// route path, the arc progression is made monotone, stop passage times are
// interpolated, and the same BTT→ATT model produces segment speeds. Urban-
// canyon GPS error (sensing/gps_model.h) and the inability to separate
// dwell time from travel time make this baseline noisier — and it costs
// ~340 mW of receiver power versus ~2 mW for cellular sampling.
#pragma once

#include <vector>

#include "citynet/bus_route.h"
#include "common/geo.h"
#include "common/sim_time.h"
#include "core/segment_catalog.h"
#include "core/travel_estimator.h"

namespace bussense {

class GpsTracker {
 public:
  GpsTracker(const SegmentCatalog& catalog, AttModelConfig att_config = {});

  /// Segment speed estimates from a timestamped GPS trace of one bus run.
  std::vector<SpeedEstimate> estimate(
      const BusRoute& route,
      const std::vector<std::pair<SimTime, Point>>& fixes) const;

  /// Map-matched, monotone arc positions for each fix (exposed for tests).
  std::vector<double> matched_arcs(
      const BusRoute& route,
      const std::vector<std::pair<SimTime, Point>>& fixes) const;

 private:
  const SegmentCatalog* catalog_;
  TravelEstimator estimator_;
};

}  // namespace bussense
