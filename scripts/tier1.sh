#!/usr/bin/env bash
# Tier-1 verification: runs the ROADMAP.md verify line verbatim from the
# repository root. Bench ctest registration is off by default, so this stays
# the fast gate; run the benches separately with
#   cmake -B build -S . -DBUSSENSE_BENCH_TESTS=ON && ctest --test-dir build -L bench
#
# Optional ThreadSanitizer stage: BUSSENSE_SANITIZE=ON ./scripts/tier1.sh
# additionally builds the concurrency-sensitive suites (the concurrent
# server and the async ingest service) under TSan in build-tsan/ and runs
# the binaries directly. Off by default -- TSan builds are ~10x slower.
set -euo pipefail
cd "$(dirname "$0")/.."
cmake -B build -S . && cmake --build build -j && (cd build && ctest --output-on-failure -j)

if [[ "${BUSSENSE_SANITIZE:-}" == "ON" ]]; then
  echo "==== tier-1 extra: ThreadSanitizer (test_concurrency, test_ingest_service) ===="
  cmake -B build-tsan -S . -DBUSSENSE_SANITIZE=thread
  cmake --build build-tsan -j --target test_concurrency test_ingest_service
  # Run the binaries directly: a partial TSan build registers no stale
  # ctest placeholders for the targets we skipped.
  ./build-tsan/tests/test_concurrency
  ./build-tsan/tests/test_ingest_service
fi
