#!/usr/bin/env bash
# Tier-1 verification: runs the ROADMAP.md verify line verbatim from the
# repository root. Bench ctest registration is off by default, so this stays
# the fast gate; run the benches separately with
#   cmake -B build -S . -DBUSSENSE_BENCH_TESTS=ON && ctest --test-dir build -L bench
set -euo pipefail
cd "$(dirname "$0")/.."
cmake -B build -S . && cmake --build build -j && cd build && ctest --output-on-failure -j
