#!/usr/bin/env bash
# Tier-1 verification: runs the ROADMAP.md verify line verbatim from the
# repository root. Bench ctest registration is off by default, so this stays
# the fast gate; run the benches separately with
#   cmake -B build -S . -DBUSSENSE_BENCH_TESTS=ON && ctest --test-dir build -L bench
#
# Every stage is timed; on success the script ends with a per-stage
# wall-clock summary, and on any failure it names the exact stage that
# broke (fail-fast -- later stages do not run).
#
# Optional ThreadSanitizer stage: BUSSENSE_SANITIZE=ON ./scripts/tier1.sh
# additionally builds the concurrency-sensitive suites (the concurrent
# server and the async ingest service) under TSan in build-tsan/ and runs
# the binaries directly. Off by default -- TSan builds are ~10x slower.
#
# Optional sharded-ingest stage: BUSSENSE_SHARDED=ON ./scripts/tier1.sh
# builds the sharded scale-out suites (the SPSC ring and the sharded
# ingest service's bit-identity property tests) under TSan in build-tsan/
# and runs the binaries directly. Off by default for the same reason.
#
# Optional fault/fuzz stage: BUSSENSE_FAULTS=ON ./scripts/tier1.sh builds
# the adversarial-input suites (fault injection + admission, golden
# accuracy, serialization fuzz) under ASan+UBSan in build-asan/ and runs
# the binaries directly, so the fuzzer's "no crash, no UB" contract is
# checked by the sanitizers rather than by luck. Off by default.
#
# Optional SIMD stage: BUSSENSE_SIMD=ON ./scripts/tier1.sh builds the
# matching suites under ASan+UBSan with the vector kernels compiled in
# (the intrinsics paths get sanitizer coverage), then builds a
# forced-scalar-fallback tree (-DBUSSENSE_SIMD=OFF) and reruns the same
# suites — so non-AVX2/NEON hosts stay covered by the identical property
# surface. Off by default.
#
# Optional durability stage: BUSSENSE_DURABILITY=ON ./scripts/tier1.sh
# builds the WAL + checkpoint/restore suite under ASan+UBSan in build-asan/
# and runs the binary directly — the torn-tail/bit-flip sweeps and the
# randomized crash-recovery property hammer exactly the byte-level parsing
# paths where the sanitizers earn their keep. Off by default.
#
# Optional serving-tier stage: BUSSENSE_SERVING=ON ./scripts/tier1.sh
# builds the epoch publisher / query service suite under TSan (the
# no-torn-epoch property: 8 readers racing sustained publishes) and again
# under ASan+UBSan with leak detection on (the 10k-epoch churn property:
# every retired epoch reclaimed). Off by default.
#
# Optional LOD metropolis stage: BUSSENSE_LOD=ON ./scripts/tier1.sh builds
# the tiered-fidelity simulation suites (test_lod_world + the metropolis
# golden band) under ASan+UBSan, byte-diffs two same-seed lod_cityweek
# trip streams generated at different thread counts, then runs the
# million-rider city-week determinism + replay bench through the ctest
# `bench` label in a separate build-lod/ tree (so the fast gate's build/
# never flips BUSSENSE_BENCH_TESTS). Off by default -- the long run takes
# ~10 minutes on a single-core host.
set -euo pipefail
cd "$(dirname "$0")/.."

CURRENT_STAGE="(startup)"
STAGE_START=$SECONDS
STAGE_SUMMARY=()

on_fail() {
  echo ""
  echo "==== tier-1 FAILED at stage: ${CURRENT_STAGE} (after $((SECONDS - STAGE_START))s in stage) ====" >&2
}
trap on_fail ERR

begin_stage() {
  CURRENT_STAGE="$1"
  STAGE_START=$SECONDS
  echo "==== tier-1 stage: ${CURRENT_STAGE} ===="
}

end_stage() {
  STAGE_SUMMARY+=("$(printf '%6ss  %s' "$((SECONDS - STAGE_START))" "${CURRENT_STAGE}")")
}

begin_stage "configure + build"
cmake -B build -S . && cmake --build build -j
end_stage

begin_stage "ctest"
(cd build && ctest --output-on-failure -j)
end_stage

if [[ "${BUSSENSE_SANITIZE:-}" == "ON" ]]; then
  begin_stage "TSan concurrency (test_concurrency, test_ingest_service)"
  cmake -B build-tsan -S . -DBUSSENSE_SANITIZE=thread
  cmake --build build-tsan -j --target test_concurrency test_ingest_service
  # Run the binaries directly: a partial TSan build registers no stale
  # ctest placeholders for the targets we skipped.
  ./build-tsan/tests/test_concurrency
  ./build-tsan/tests/test_ingest_service
  end_stage
fi

if [[ "${BUSSENSE_SHARDED:-}" == "ON" ]]; then
  begin_stage "TSan sharded ingest (test_spsc_ring, test_ingest_service)"
  cmake -B build-tsan -S . -DBUSSENSE_SANITIZE=thread
  cmake --build build-tsan -j --target test_spsc_ring test_ingest_service
  ./build-tsan/tests/test_spsc_ring
  # The ingest suite carries the sharded bit-identity property tests; run
  # just those here (the full suite already runs under BUSSENSE_SANITIZE).
  ./build-tsan/tests/test_ingest_service --gtest_filter='Sharded*'
  end_stage
fi

if [[ "${BUSSENSE_FAULTS:-}" == "ON" ]]; then
  begin_stage "ASan+UBSan faults (test_faults, test_golden_accuracy, test_fuzz_serialization)"
  cmake -B build-asan -S . -DBUSSENSE_SANITIZE=address,undefined
  cmake --build build-asan -j --target test_faults test_golden_accuracy test_fuzz_serialization
  ./build-asan/tests/test_faults
  ./build-asan/tests/test_golden_accuracy
  ./build-asan/tests/test_fuzz_serialization
  end_stage
fi

if [[ "${BUSSENSE_SIMD:-}" == "ON" ]]; then
  begin_stage "ASan+UBSan SIMD kernels (test_matching, test_matching_simd)"
  cmake -B build-asan -S . -DBUSSENSE_SANITIZE=address,undefined
  cmake --build build-asan -j --target test_matching test_matching_simd
  ./build-asan/tests/test_matching
  ./build-asan/tests/test_matching_simd
  end_stage
  begin_stage "scalar-batch fallback (-DBUSSENSE_SIMD=OFF)"
  cmake -B build-scalar -S . -DBUSSENSE_SIMD=OFF
  cmake --build build-scalar -j --target test_matching test_matching_simd
  ./build-scalar/tests/test_matching
  ./build-scalar/tests/test_matching_simd
  end_stage
fi

if [[ "${BUSSENSE_DURABILITY:-}" == "ON" ]]; then
  begin_stage "ASan+UBSan durability (test_durability)"
  cmake -B build-asan -S . -DBUSSENSE_SANITIZE=address,undefined
  cmake --build build-asan -j --target test_durability
  # The scan/repair paths parse attacker-shaped bytes (torn tails, bit
  # flips, duplicated blocks); run them with memory checking on.
  ./build-asan/tests/test_durability
  end_stage
fi

if [[ "${BUSSENSE_SERVING:-}" == "ON" ]]; then
  begin_stage "TSan serving tier (test_query_service)"
  cmake -B build-tsan -S . -DBUSSENSE_SANITIZE=thread
  cmake --build build-tsan -j --target test_query_service
  # The no-torn-epoch property races 8 pinned readers against sustained
  # publishes + live ingest; TSan must stay silent on the whole suite.
  ./build-tsan/tests/test_query_service
  end_stage
  begin_stage "ASan+UBSan serving leak check (test_query_service)"
  cmake -B build-asan -S . -DBUSSENSE_SANITIZE=address,undefined
  cmake --build build-asan -j --target test_query_service
  # Leak detection proves the 10k-epoch churn reclaims every retired
  # epoch -- the grace-period protocol, checked by the allocator.
  ASAN_OPTIONS=detect_leaks=1 ./build-asan/tests/test_query_service
  end_stage
fi

if [[ "${BUSSENSE_LOD:-}" == "ON" ]]; then
  begin_stage "ASan+UBSan LOD suites (test_lod_world, metropolis golden)"
  cmake -B build-asan -S . -DBUSSENSE_SANITIZE=address,undefined
  cmake --build build-asan -j --target test_lod_world test_golden_accuracy
  ./build-asan/tests/test_lod_world
  ./build-asan/tests/test_golden_accuracy --gtest_filter='*Metropolis*'
  end_stage
  begin_stage "deterministic-seed re-run byte diff (lod_cityweek)"
  cmake --build build -j --target lod_cityweek
  # Two same-seed runs at different thread counts must produce the same
  # bytes -- the full %.17g trip stream, not just a digest.
  ./build/examples/lod_cityweek 60000 2 1 2026 build/lod_stream_a.txt
  ./build/examples/lod_cityweek 60000 2 4 2026 build/lod_stream_b.txt
  cmp build/lod_stream_a.txt build/lod_stream_b.txt
  rm -f build/lod_stream_a.txt build/lod_stream_b.txt
  end_stage
  begin_stage "million-rider city-week (ctest bench label, build-lod/)"
  cmake -B build-lod -S . -DBUSSENSE_BENCH_TESTS=ON
  cmake --build build-lod -j --target bench_ingest_service
  # The bench itself asserts the determinism contract (day-0 thread
  # ladder + same-seed week re-run) and exits non-zero on a digest
  # mismatch; BUSSENSE_LOD_RIDERS can scale the metropolis down for
  # smoke runs of this stage.
  (cd build-lod && ctest --output-on-failure -R 'bench.bench_ingest_service')
  end_stage
fi

echo ""
echo "==== tier-1 PASSED -- stage wall-clock summary ===="
for line in "${STAGE_SUMMARY[@]}"; do
  echo "  ${line}"
done
